module Translate = Ezrt_blocks.Translate
module Table = Ezrt_sched.Table
module Timeline = Ezrt_sched.Timeline
module Validator = Ezrt_sched.Validator
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec

type event =
  | Timer_interrupt of int
  | Dispatch of { time : int; task : int; instance : int; resumed : bool }
  | Preempted of { time : int; task : int; instance : int }
  | Completed of { time : int; task : int; instance : int }
  | Overrun of { time : int; task : int; instance : int }

let event_to_string model event =
  let name i = model.Translate.tasks.(i).Task.name in
  match event with
  | Timer_interrupt t -> Printf.sprintf "%6d interrupt" t
  | Dispatch { time; task; instance; resumed } ->
    Printf.sprintf "%6d dispatch %s#%d%s" time (name task) instance
      (if resumed then " (resume)" else "")
  | Preempted { time; task; instance } ->
    Printf.sprintf "%6d preempt  %s#%d" time (name task) instance
  | Completed { time; task; instance } ->
    Printf.sprintf "%6d complete %s#%d" time (name task) instance
  | Overrun { time; task; instance } ->
    Printf.sprintf "%6d OVERRUN  %s#%d" time (name task) instance

type outcome = {
  trace : event list;
  segments : Timeline.segment list;
  overruns : int;
  completed : int;
}

type fault = {
  f_task : int;
  f_instance : int;
  f_extra : int;
}

let execute ?overhead ?(cycles = 1) ?(faults = []) model items =
  if cycles < 1 then invalid_arg "Vm.execute: cycles < 1";
  List.iter
    (fun f -> if f.f_extra < 0 then invalid_arg "Vm.execute: negative fault")
    faults;
  let overhead =
    Option.value overhead ~default:model.Translate.spec.Spec.disp_overhead
  in
  if overhead < 0 then invalid_arg "Vm.execute: negative overhead";
  let rows = Array.of_list items in
  let n_rows = Array.length rows in
  let horizon = model.Translate.horizon in
  let trace = ref [] in
  let segments = ref [] in
  let overruns = ref 0 in
  let completed = ref 0 in
  let emit e = trace := e :: !trace in
  (* Remaining work per (task, cycle-local instance) of the current
     cycle; refilled at each cycle boundary. *)
  let remaining = Hashtbl.create 64 in
  let emitted_parts = Hashtbl.create 64 in
  let refill () =
    Hashtbl.reset remaining;
    Hashtbl.reset emitted_parts;
    Array.iteri
      (fun i task ->
        for k = 0 to model.Translate.instance_counts.(i) - 1 do
          let extra =
            List.fold_left
              (fun acc f ->
                if f.f_task = i && f.f_instance = k then acc + f.f_extra
                else acc)
              0 faults
          in
          Hashtbl.replace remaining (i, k) (task.Task.wcet + extra)
        done)
      model.Translate.tasks
  in
  let record_segment cycle task instance start finish =
    if cycle = 0 && finish > start then begin
      let parts =
        Option.value (Hashtbl.find_opt emitted_parts (task, instance)) ~default:0
      in
      Hashtbl.replace emitted_parts (task, instance) (parts + 1);
      segments :=
        { Timeline.task; instance; start; finish; resumed = parts > 0 }
        :: !segments
    end
  in
  for cycle = 0 to cycles - 1 do
    refill ();
    let base = cycle * horizon in
    for k = 0 to n_rows - 1 do
      let row = rows.(k) in
      let t = base + row.Table.start in
      let next_start =
        if k + 1 < n_rows then base + rows.(k + 1).Table.start
        else base + horizon
        (* the last row may run to the end of the hyper-period *)
      in
      emit (Timer_interrupt t);
      let task = row.Table.task and instance = row.Table.instance in
      emit (Dispatch { time = t; task; instance; resumed = row.Table.resumed });
      let rem =
        Option.value (Hashtbl.find_opt remaining (task, instance)) ~default:0
      in
      let effective = t + overhead in
      let available = next_start - effective in
      if available <= 0 || rem = 0 then begin
        if rem > 0 then begin
          incr overruns;
          emit (Overrun { time = t; task; instance })
        end
      end
      else begin
        let run = min rem available in
        let finish = effective + run in
        record_segment cycle task instance effective finish;
        let rem' = rem - run in
        Hashtbl.replace remaining (task, instance) rem';
        if rem' = 0 then begin
          incr completed;
          emit (Completed { time = finish; task; instance })
        end
        else if k + 1 < n_rows then
          emit (Preempted { time = finish; task; instance })
        else begin
          incr overruns;
          emit (Overrun { time = finish; task; instance })
        end
      end
    done;
    (* Any instance with leftover work at the end of the cycle never
       completed: count it. *)
    Hashtbl.iter
      (fun (task, instance) rem ->
        if rem > 0 then begin
          incr overruns;
          emit (Overrun { time = base + horizon; task; instance })
        end)
      remaining
  done;
  {
    trace = List.rev !trace;
    segments =
      List.sort
        (fun (a : Timeline.segment) b -> compare a.Timeline.start b.Timeline.start)
        !segments;
    overruns = !overruns;
    completed = !completed;
  }

(* Healthy instances must execute exactly their planned segments even
   while the faulty ones overrun. *)
let isolation_check ?overhead ~faults model items =
  let outcome = execute ?overhead ~cycles:1 ~faults model items in
  (* check the whole trace against the specification, then discard the
     violations that concern the faulty instances themselves: whatever
     remains leaked onto healthy work *)
  let violations =
    match Validator.check model outcome.segments with
    | Ok () -> []
    | Error vs ->
      let concerns_faulty v =
        let name i = model.Translate.tasks.(i).Task.name in
        let is_faulty_name n k =
          List.exists
            (fun f -> name f.f_task = n && f.f_instance = k)
            faults
        in
        match v with
        | Validator.Wrong_amount (n, k, _, _)
        | Validator.Started_before_release (n, k, _, _)
        | Validator.Missed_deadline (n, k, _, _)
        | Validator.Fragmented_non_preemptive (n, k) -> is_faulty_name n k
        | Validator.Wrong_instance_count (n, _, _) ->
          List.exists (fun f -> name f.f_task = n) faults
        | Validator.Processor_overlap _ | Validator.Precedence_violated _
        | Validator.Exclusion_interleaved _ | Validator.Message_too_early _ ->
          false
      in
      List.filter (fun v -> not (concerns_faulty v)) vs
  in
  match violations with
  | [] -> Ok outcome.overruns
  | vs -> Error vs

let verify ?overhead model items =
  let outcome = execute ?overhead ~cycles:1 model items in
  Validator.check model outcome.segments

let max_tolerable_overhead ?(limit = 1000) model items =
  let ok overhead =
    match verify ~overhead model items with Ok () -> true | Error _ -> false
  in
  (* The feasible overheads form a prefix: binary search its end. *)
  if not (ok 0) then -1
  else begin
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi + 1) / 2 in
        if ok mid then search mid hi else search lo (mid - 1)
    in
    search 0 limit
  end
