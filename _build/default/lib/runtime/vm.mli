(** Virtual target machine.

    Executes a synthesized schedule table the way the generated
    dispatcher does on a microcontroller: a timer interrupt fires at
    each row's start time, the dispatcher (optionally costing
    [overhead] time units — the metamodel's [dispOveh]) starts or
    resumes the row's task instance, and the instance runs until it
    completes or the next interrupt preempts it.

    This is the container substitute for running the generated C on
    real hardware (DESIGN.md): it exercises the same table-walking
    logic and yields a trace whose derived segments are checked against
    the full specification by {!Ezrt_sched.Validator}. *)

type event =
  | Timer_interrupt of int
  | Dispatch of { time : int; task : int; instance : int; resumed : bool }
  | Preempted of { time : int; task : int; instance : int }
  | Completed of { time : int; task : int; instance : int }
  | Overrun of { time : int; task : int; instance : int }
      (** the dispatch overhead consumed the whole slot, or the
          instance still had work after its last table row *)

val event_to_string : Ezrt_blocks.Translate.t -> event -> string

type outcome = {
  trace : event list;
  segments : Ezrt_sched.Timeline.segment list;
      (** first-hyper-period execution segments, including the
          overhead-induced shifts *)
  overruns : int;
  completed : int;  (** instances completed over all simulated cycles *)
}

type fault = {
  f_task : int;  (** task index *)
  f_instance : int;  (** cycle-local instance *)
  f_extra : int;  (** execution-time overrun beyond the WCET *)
}

val execute :
  ?overhead:int ->
  ?cycles:int ->
  ?faults:fault list ->
  Ezrt_blocks.Translate.t ->
  Ezrt_sched.Table.item list ->
  outcome
(** [overhead] defaults to the specification's [disp_overhead];
    [cycles] (hyper-periods simulated) defaults to 1.

    [faults] inject execution-time overruns: the instance needs
    [wcet + extra] units.  Because dispatching is purely time-driven,
    an overrunning instance is cut at the next timer interrupt (an
    {!Overrun} event) and every other instance still runs in its own
    slots — the temporal-isolation property of table-driven
    execution. *)

val isolation_check :
  ?overhead:int ->
  faults:fault list ->
  Ezrt_blocks.Translate.t ->
  Ezrt_sched.Table.item list ->
  (int, Ezrt_sched.Validator.violation list) result
(** Execute one hyper-period with the faults injected and check that
    every segment of the NON-faulty instances is exactly as planned;
    returns the number of overruns confined to the faulty instances, or
    the constraint violations that leaked onto healthy ones. *)

val verify :
  ?overhead:int ->
  Ezrt_blocks.Translate.t ->
  Ezrt_sched.Table.item list ->
  (unit, Ezrt_sched.Validator.violation list) result
(** Execute one hyper-period and check the resulting segments against
    the specification. *)

val max_tolerable_overhead :
  ?limit:int -> Ezrt_blocks.Translate.t -> Ezrt_sched.Table.item list -> int
(** Largest per-dispatch overhead (up to [limit], default 1000) for
    which {!verify} still succeeds — how much dispatcher cost the
    synthesized table absorbs before a constraint breaks. *)
