open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Priority = Ezrt_sched.Priority
module Case_studies = Ezrt_spec.Case_studies
open Test_util

(* Two tasks, both with work pending at t=0; urgent has the shorter
   deadline and period. *)
let model =
  lazy
    (Translate.translate
       (Ezrt_spec.Spec.make ~name:"prio"
          ~tasks:
            [
              Ezrt_spec.Task.make ~name:"slow" ~wcet:2 ~deadline:40 ~period:40 ();
              Ezrt_spec.Task.make ~name:"fast" ~wcet:2 ~deadline:10 ~period:20 ();
            ]
          ()))

(* Drive the net to the state where both release transitions compete. *)
let competing_state () =
  let model = Lazy.force model in
  let net = model.Translate.net in
  let rec advance s =
    let trs = State.fireable net s in
    let is_release tid =
      match model.Translate.meanings.(tid) with
      | Ezrt_blocks.Meaning.Release _ -> true
      | _ -> false
    in
    if List.length (List.filter is_release trs) >= 2 then (s, trs)
    else begin
      let is_arrival tid =
        match model.Translate.meanings.(tid) with
        | Ezrt_blocks.Meaning.Phase_arrival _ | Ezrt_blocks.Meaning.Arrival _ ->
          true
        | _ -> false
      in
      (* fire pending arrivals first so both releases become ready *)
      match List.filter is_arrival trs @ trs with
      | tid :: _ -> advance (State.fire net s tid (State.dlb net s tid))
      | [] -> Alcotest.fail "never reached the competing state"
    end
  in
  advance (State.initial net)

let release_order policy =
  let model = Lazy.force model in
  let s, candidates = competing_state () in
  let ordered = Priority.order policy model s candidates in
  List.filter_map
    (fun tid ->
      match model.Translate.meanings.(tid) with
      | Ezrt_blocks.Meaning.Release i ->
        Some model.Translate.tasks.(i).Ezrt_spec.Task.name
      | _ -> None)
    ordered

let test_edf_prefers_tight_deadline () =
  match release_order Priority.Edf with
  | "fast" :: _ -> ()
  | order -> Alcotest.failf "edf order: %s" (String.concat "," order)

let test_rm_prefers_short_period () =
  match release_order Priority.Rm with
  | "fast" :: _ -> ()
  | order -> Alcotest.failf "rm order: %s" (String.concat "," order)

let test_dm_prefers_short_deadline () =
  match release_order Priority.Dm with
  | "fast" :: _ -> ()
  | order -> Alcotest.failf "dm order: %s" (String.concat "," order)

let test_fifo_is_id_order () =
  let model = Lazy.force model in
  let s, candidates = competing_state () in
  let ordered = Priority.order Priority.Fifo model s candidates in
  check_bool "sorted by id" true (ordered = List.sort compare candidates)

let test_order_is_permutation () =
  let model = Lazy.force model in
  let s, candidates = competing_state () in
  List.iter
    (fun (_, policy) ->
      let ordered = Priority.order policy model s candidates in
      check_bool "permutation" true
        (List.sort compare ordered = List.sort compare candidates))
    Priority.all

let test_names () =
  check_string "edf" "edf" (Priority.to_string Priority.Edf);
  check_int "five policies" 5 (List.length Priority.all)

let suite =
  [
    case "EDF prefers the tight deadline" test_edf_prefers_tight_deadline;
    case "RM prefers the short period" test_rm_prefers_short_period;
    case "DM prefers the short deadline" test_dm_prefers_short_deadline;
    case "FIFO keeps id order" test_fifo_is_id_order;
    case "ordering is a permutation" test_order_is_permutation;
    case "policy names" test_names;
  ]
