open Ezrt_tpn
open Test_util

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_structure () =
  let dot = Dot.to_dot (sequential_net ()) in
  check_bool "digraph" true (contains ~needle:"digraph" dot);
  check_bool "rankdir" true (contains ~needle:"rankdir=LR" dot);
  check_bool "place node" true (contains ~needle:"shape=circle" dot);
  check_bool "transition node" true (contains ~needle:"shape=box" dot);
  check_bool "interval label" true (contains ~needle:"[2, 5]" dot);
  check_bool "token annotation" true (contains ~needle:"(1)" dot);
  check_bool "edges" true (contains ~needle:"p0 -> t0" dot);
  check_bool "closes" true (contains ~needle:"}" dot)

let test_weights_and_priorities () =
  let b = Pnet.Builder.create "wp" in
  let p = Pnet.Builder.add_place b ~tokens:1 "p" in
  let q = Pnet.Builder.add_place b "q" in
  let t = Pnet.Builder.add_transition b ~priority:7 "t" Time_interval.zero in
  Pnet.Builder.arc_pt b p t ~weight:3;
  Pnet.Builder.arc_tp b t q;
  let dot = Dot.to_dot (Pnet.Builder.build b) in
  check_bool "weight label" true (contains ~needle:"label=\"3\"" dot);
  check_bool "priority shown" true (contains ~needle:"pi=7" dot)

let test_quoting () =
  let b = Pnet.Builder.create "quoted" in
  let p = Pnet.Builder.add_place b ~tokens:1 "src" in
  let q = Pnet.Builder.add_place b "has.dots" in
  let t = Pnet.Builder.add_transition b "t" Time_interval.zero in
  Pnet.Builder.arc_pt b p t;
  Pnet.Builder.arc_tp b t q;
  let dot = Dot.to_dot (Pnet.Builder.build b) in
  check_bool "quoted name" true (contains ~needle:"\"has.dots\"" dot)

let test_rankdir_option () =
  let dot = Dot.to_dot ~rankdir:"TB" (sequential_net ()) in
  check_bool "TB" true (contains ~needle:"rankdir=TB" dot)

let suite =
  [
    case "dot structure" test_structure;
    case "weights and priorities" test_weights_and_priorities;
    case "name quoting" test_quoting;
    case "rankdir option" test_rankdir_option;
  ]
