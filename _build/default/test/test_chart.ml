module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Timeline = Ezrt_sched.Timeline
module Chart = Ezrt_sched.Chart
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let timeline_of spec =
  let model = Translate.translate spec in
  match Search.find_schedule model with
  | Ok schedule, _ -> (model, Timeline.of_schedule model schedule)
  | Error f, _ -> Alcotest.failf "infeasible: %s" (Search.failure_to_string f)

let rows s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

let test_row_per_task () =
  let model, segs = timeline_of Case_studies.quickstart in
  let chart = Chart.render model segs in
  check_int "three rows" 3 (List.length (rows chart));
  List.iter
    (fun row ->
      check_bool "bracketed" true
        (String.contains row '|' && row.[String.length row - 1] = '|'))
    (rows chart)

let test_unscaled_columns_exact () =
  let model, segs = timeline_of Case_studies.quickstart in
  (* horizon 20 < width: one column per time unit.
     sample runs [0,2), filter [2,6), actuate [6,9). *)
  let chart = Chart.render ~width:72 model segs in
  match rows chart with
  | [ sample; filter; actuate ] ->
    let body row =
      let start = String.index row '|' + 1 in
      let stop = String.rindex row '|' in
      String.sub row start (stop - start)
    in
    check_string "sample row" "##                  " (body sample);
    check_string "filter row" "  ####              " (body filter);
    check_string "actuate row" "      ###           " (body actuate)
  | _ -> Alcotest.fail "expected three rows"

let test_preemption_gap_dots () =
  let model, segs = timeline_of Case_studies.fig8_preemptive in
  let chart = Chart.render model segs in
  check_bool "gaps shown" true (String.contains chart '.')

let test_scaling_bounds_width () =
  let model, segs = timeline_of Case_studies.mine_pump in
  let chart = Chart.render ~width:60 model segs in
  List.iter
    (fun row ->
      check_bool "row bounded" true (String.length row <= 60 + 10))
    (rows chart)

let test_upto_clips () =
  let model, segs = timeline_of Case_studies.quickstart in
  let chart = Chart.render ~upto:9 model segs in
  (* 9 columns after clipping *)
  List.iter
    (fun row ->
      let start = String.index row '|' + 1 in
      let stop = String.rindex row '|' in
      check_int "nine columns" 9 (stop - start))
    (rows chart)

let test_occupancy_strip () =
  let _, segs = timeline_of Case_studies.quickstart in
  let strip = Chart.render_occupancy ~horizon:20 segs in
  check_bool "cpu label" true (String.length strip > 4 && String.sub strip 0 3 = "cpu");
  (* busy for 9 of 20 units *)
  let hashes = String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 strip in
  check_int "busy columns" 9 hashes

let suite =
  [
    case "one row per task" test_row_per_task;
    case "unscaled columns are exact" test_unscaled_columns_exact;
    case "preemption gaps drawn" test_preemption_gap_dots;
    case "scaling bounds the width" test_scaling_bounds_width;
    case "upto clips the horizon" test_upto_clips;
    case "occupancy strip" test_occupancy_strip;
  ]
