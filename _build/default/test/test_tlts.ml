open Ezrt_tpn
open Test_util

let test_successors_earliest () =
  let net = conflict_net () in
  let s = State.initial net in
  let succs = Tlts.successors `Earliest net s in
  check_int "one per fireable" 2 (List.length succs);
  List.iter
    (fun (a, _) ->
      check_int "fired at own DLB" (State.dlb net s a.Tlts.tid) a.Tlts.delay)
    succs

let test_successors_all_times () =
  let net = conflict_net () in
  let s = State.initial net in
  let succs = Tlts.successors `All_times net s in
  (* t0: q in [1,3] (3 options); t1: q in [2,3] (2 options) *)
  check_int "every discrete time" 5 (List.length succs)

let test_explore_sequential () =
  let net = sequential_net () in
  let stats = Tlts.explore net in
  check_int "three states" 3 stats.Tlts.states;
  check_int "two edges" 2 stats.Tlts.edges;
  check_int "one deadlock" 1 stats.Tlts.deadlocks;
  check_bool "complete" false stats.Tlts.truncated

let test_explore_all_times () =
  let net = sequential_net () in
  let stats = Tlts.explore ~mode:`All_times net in
  (* initial, p1 with 4 distinct residual clocks collapse: firing t0 at
     2..5 yields states that differ only by t1's fresh clock (0), so
     there are 3 states total. *)
  check_int "states" 3 stats.Tlts.states;
  check_int "edges: 4 firings of t0 + 1 of t1" 5 stats.Tlts.edges

let test_explore_truncation () =
  let net = ring_net 5 3 in
  let stats = Tlts.explore ~max_states:2 net in
  check_bool "truncated" true stats.Tlts.truncated;
  check_int "bounded" 2 stats.Tlts.states

let test_ring_cycles () =
  let net = ring_net 4 1 in
  let stats = Tlts.explore net in
  check_int "no deadlock in a ring" 0 stats.Tlts.deadlocks;
  check_bool "finite" false stats.Tlts.truncated

let test_run_picks () =
  let net = sequential_net () in
  let actions = Tlts.run net (fun s -> List.nth_opt (State.fireable net s) 0) 10 in
  check_int "both transitions fired" 2 (List.length actions);
  match actions with
  | [ a0; a1 ] ->
    check_int "t0 first" 0 a0.Tlts.tid;
    check_int "at its DLB" 2 a0.Tlts.delay;
    check_int "then t1" 1 a1.Tlts.tid
  | _ -> Alcotest.fail "expected two actions"

let test_run_rejects_unfireable () =
  let net = sequential_net () in
  Alcotest.check_raises "not fireable"
    (Invalid_argument "Tlts.run: t1 is not fireable") (fun () ->
      ignore (Tlts.run net (fun _ -> Some 1) 1))

let test_run_stops_on_none () =
  let net = sequential_net () in
  check_int "no steps" 0 (List.length (Tlts.run net (fun _ -> None) 10))

let test_graph_materialization () =
  let net = sequential_net () in
  let g = Tlts.graph net in
  check_int "three nodes" 3 (Array.length g.Tlts.nodes);
  check_int "two edges" 2 (List.length g.Tlts.transitions);
  check_bool "initial first" true
    (State.equal g.Tlts.nodes.(0) (State.initial net));
  (* edges reference valid nodes in firing order *)
  List.iter
    (fun (src, action, dst) ->
      check_bool "src in range" true (src >= 0 && src < 3);
      check_bool "dst in range" true (dst >= 0 && dst < 3);
      check_bool "action delay nonnegative" true (action.Tlts.delay >= 0))
    g.Tlts.transitions

let test_graph_dot () =
  let net = sequential_net () in
  let dot = Tlts.graph_to_dot net (Tlts.graph net) in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length dot
      && (String.sub dot i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check_bool "digraph" true (contains "digraph tlts");
  check_bool "state nodes" true (contains "s0");
  check_bool "edge labels with delays" true (contains "t0@2");
  check_bool "marking shown" true (contains "p0")

let test_graph_truncation () =
  let net = ring_net 4 2 in
  let g = Tlts.graph ~max_states:2 net in
  check_int "bounded" 2 (Array.length g.Tlts.nodes)

let suite =
  [
    case "earliest successors" test_successors_earliest;
    case "graph materialization" test_graph_materialization;
    case "graph to dot" test_graph_dot;
    case "graph truncation" test_graph_truncation;
    case "all-times successors" test_successors_all_times;
    case "explore sequential net" test_explore_sequential;
    case "explore all times" test_explore_all_times;
    case "explore truncation" test_explore_truncation;
    case "ring has no deadlock" test_ring_cycles;
    case "guided run" test_run_picks;
    case "run rejects unfireable picks" test_run_rejects_unfireable;
    case "run stops on None" test_run_stops_on_none;
  ]
