module Doc = Ezrt_xml.Doc
module Parser = Ezrt_xml.Parser
open Test_util

let parse_ok s =
  match Parser.parse s with
  | Ok node -> node
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_to_string e)

let parse_err s =
  match Parser.parse s with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  | Error _ -> ()

let test_escape () =
  check_string "all specials" "&amp;&lt;&gt;&quot;&apos;x" (Doc.escape "&<>\"'x")

let test_elt_rejects_bad_tag () =
  Alcotest.check_raises "space in tag"
    (Invalid_argument "Ezrt_xml.Doc.elt: invalid tag \"a b\"") (fun () ->
      ignore (Doc.elt "a b" []))

let test_compact_print () =
  let doc = Doc.elt "a" ~attrs:[ ("k", "v&") ] [ Doc.leaf "b" "x<y"; Doc.elt "c" [] ] in
  check_string "compact" "<a k=\"v&amp;\"><b>x&lt;y</b><c/></a>"
    (Doc.to_string doc)

let test_decl () =
  let s = Doc.to_string ~decl:true (Doc.elt "a" []) in
  check_bool "has decl" true
    (String.length s > 5 && String.sub s 0 5 = "<?xml")

let test_parse_simple () =
  let doc = parse_ok "<a k=\"v\"><b>hi</b></a>" in
  check_string "tag" "a" (Option.get (Doc.tag_of doc));
  check_string "attr" "v" (Doc.attr_exn doc "k");
  check_string "child text" "hi" (Option.get (Doc.child_text doc "b"))

let test_parse_entities () =
  let doc = parse_ok "<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>" in
  check_string "decoded" "<&>\"'AB" (Doc.text_content doc)

let test_parse_numeric_utf8 () =
  let doc = parse_ok "<a>&#233;</a>" in
  check_string "two-byte utf8" "\xc3\xa9" (Doc.text_content doc)

let test_parse_single_quotes () =
  let doc = parse_ok "<a k='v1' l=\"v2\"/>" in
  check_string "single" "v1" (Doc.attr_exn doc "k");
  check_string "double" "v2" (Doc.attr_exn doc "l")

let test_parse_comments_and_pi () =
  let doc =
    parse_ok
      "<?xml version=\"1.0\"?><!-- head --><a><!-- in --><b/><?pi data?></a>\n\
       <!-- tail -->"
  in
  check_int "children" 1 (List.length (Doc.children_of doc))

let test_parse_doctype () =
  let doc = parse_ok "<!DOCTYPE a><a/>" in
  check_string "tag" "a" (Option.get (Doc.tag_of doc))

let test_parse_cdata () =
  let doc = parse_ok "<a><![CDATA[x < y & z]]></a>" in
  check_string "raw" "x < y & z" (Doc.text_content doc)

let test_parse_mixed_content () =
  let doc = parse_ok "<a>one<b/>two</a>" in
  match Doc.children_of doc with
  | [ Doc.Text "one"; Doc.Element _; Doc.Text "two" ] -> ()
  | _ -> Alcotest.fail "wrong mixed content"

let test_whitespace_only_text_dropped () =
  let doc = parse_ok "<a>\n  <b/>\n</a>" in
  check_int "children" 1 (List.length (Doc.children_of doc))

let test_parse_errors () =
  parse_err "";
  parse_err "<a>";
  parse_err "<a></b>";
  parse_err "<a x=1/>";
  parse_err "<a>&unknown;</a>";
  parse_err "<a/><b/>";
  parse_err "<a><!-- unterminated</a>";
  parse_err "<a x=\"<\"/>"

let test_find_children () =
  let doc = parse_ok "<a><b n=\"1\"/><c/><b n=\"2\"/></a>" in
  check_int "two b" 2 (List.length (Doc.find_children doc "b"));
  check_string "first b" "1" (Doc.attr_exn (Option.get (Doc.find_child doc "b")) "n")

let test_equal () =
  let a = parse_ok "<a k=\"v\"><b>x</b></a>" in
  let b = parse_ok "<a k=\"v\"><b>x</b></a>" in
  let c = parse_ok "<a k=\"w\"><b>x</b></a>" in
  check_bool "equal" true (Doc.equal a b);
  check_bool "not equal" false (Doc.equal a c)

(* Random document generator for round-trip properties.  Text avoids
   whitespace-only strings (dropped between elements by design). *)
let doc_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "cd"; "rt:x"; "item" ] in
  let attr_key = oneofl [ "k"; "key"; "n" ] in
  let text_gen =
    map
      (fun s -> "x" ^ s)
      (string_size ~gen:(oneofl [ 'a'; '&'; '<'; '"'; '\''; ' '; 'z' ])
         (int_range 0 6))
  in
  let rec node depth =
    if depth = 0 then map Doc.text text_gen
    else
      frequency
        [
          (1, map Doc.text text_gen);
          ( 3,
            let* t = tag in
            let* n_attrs = int_range 0 2 in
            let* attr_keys = list_repeat n_attrs attr_key in
            let attr_keys = List.sort_uniq compare attr_keys in
            let* attrs =
              List.fold_right
                (fun k acc ->
                  let* rest = acc in
                  let* v = text_gen in
                  return ((k, v) :: rest))
                attr_keys (return [])
            in
            let* n_children = int_range 0 3 in
            let* children = list_repeat n_children (node (depth - 1)) in
            return (Doc.elt t ~attrs children) );
        ]
  in
  let* t = tag in
  let* n_children = int_range 0 3 in
  let* children = list_repeat n_children (node 2) in
  return (Doc.elt t children)

let arbitrary_doc = QCheck.make ~print:Doc.to_string doc_gen

(* Adjacent text nodes merge when re-parsed, so compare the parsed
   form of the compact print against the parsed form of itself printed
   again — i.e., printing is a fixpoint after one parse. *)
let prop_roundtrip_compact =
  qcheck ~count:300 "parse(print(d)) prints identically" arbitrary_doc
    (fun doc ->
      let s = Doc.to_string doc in
      match Parser.parse s with
      | Error _ -> false
      | Ok reparsed -> String.equal s (Doc.to_string reparsed))

let prop_roundtrip_pretty =
  qcheck ~count:300 "pretty print parses to the same document"
    arbitrary_doc (fun doc ->
      let s = Doc.to_string doc in
      match Parser.parse s with
      | Error _ -> false
      | Ok once -> (
        (* once has normalized text nodes; pretty printing it must
           parse back to an equal tree *)
        match Parser.parse (Doc.to_string_pretty once) with
        | Error _ -> false
        | Ok twice -> Doc.equal once twice))

let prop_escape_roundtrip =
  qcheck "escaped text parses back" QCheck.(string_of_size (QCheck.Gen.return 8))
    (fun s ->
      QCheck.assume (String.exists (fun c -> c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r') s);
      QCheck.assume (String.for_all (fun c -> Char.code c >= 32 || c = '\n') s);
      match Parser.parse ("<a>" ^ Doc.escape s ^ "</a>") with
      | Ok doc -> String.equal (Doc.text_content doc) s
      | Error _ -> false)

(* fuzz: the parser returns a result on arbitrary bytes instead of
   raising *)
let prop_parser_total =
  qcheck ~count:500 "parser is total on junk"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 40) QCheck.Gen.printable)
    (fun s ->
      match Parser.parse s with Ok _ | Error _ -> true)

let prop_parser_total_xmlish =
  let gen =
    QCheck.Gen.(
      map (String.concat "")
        (list_size (int_range 0 12)
           (oneofl
              [ "<a>"; "</a>"; "<b x=\"1\">"; "&amp;"; "&#6;"; "txt"; "<!--";
                "-->"; "<![CDATA["; "]]>"; "<?pi?>"; "\""; "'"; "<"; ">" ])))
  in
  qcheck ~count:500 "parser is total on xml-ish fragments" (QCheck.make gen)
    (fun s -> match Parser.parse s with Ok _ | Error _ -> true)

let suite =
  [
    case "escape" test_escape;
    prop_parser_total;
    prop_parser_total_xmlish;
    case "elt rejects bad tag" test_elt_rejects_bad_tag;
    case "compact print" test_compact_print;
    case "xml declaration" test_decl;
    case "parse simple" test_parse_simple;
    case "parse entities" test_parse_entities;
    case "numeric utf8 entity" test_parse_numeric_utf8;
    case "single quotes" test_parse_single_quotes;
    case "comments and PIs" test_parse_comments_and_pi;
    case "doctype" test_parse_doctype;
    case "cdata" test_parse_cdata;
    case "mixed content" test_parse_mixed_content;
    case "whitespace-only text dropped" test_whitespace_only_text_dropped;
    case "parse errors" test_parse_errors;
    case "find children" test_find_children;
    case "equal" test_equal;
    prop_roundtrip_compact;
    prop_roundtrip_pretty;
    prop_escape_roundtrip;
  ]
