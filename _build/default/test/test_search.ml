module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Schedule = Ezrt_sched.Schedule
module Timeline = Ezrt_sched.Timeline
module Validator = Ezrt_sched.Validator
module Priority = Ezrt_sched.Priority
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let solve ?options spec =
  let model = Translate.translate spec in
  let outcome, metrics = Search.find_schedule ?options model in
  (model, outcome, metrics)

let expect_feasible ?options name spec =
  match solve ?options spec with
  | model, Ok schedule, _ ->
    (* certify against the TPN semantics and the raw specification *)
    let final = Schedule.replay model.Translate.net schedule in
    check_bool (name ^ " replay reaches MF") true (Translate.is_final model final);
    let segments = Timeline.of_schedule model schedule in
    (match Validator.check model segments with
    | Ok () -> ()
    | Error vs ->
      Alcotest.failf "%s: %s" name
        (Validator.violation_to_string (List.hd vs)))
  | _, Error f, _ ->
    Alcotest.failf "%s: %s" name (Search.failure_to_string f)

let test_case_studies_feasible () =
  List.iter
    (fun (name, spec) ->
      if name <> "greedy-trap" then expect_feasible name spec)
    Case_studies.all

let test_mine_pump_statistics () =
  let _, outcome, metrics = solve Case_studies.mine_pump in
  check_bool "feasible" true (Result.is_ok outcome);
  (* the paper reports 3268 searched states (minimum 3130); our stored
     count must be in the same regime: thousands, not millions *)
  check_bool "stored in the paper's regime" true
    (metrics.Search.stored > 2000 && metrics.Search.stored < 10_000);
  check_bool "fast" true (metrics.Search.elapsed_s < 5.0);
  check_bool "eager pruning active" true (metrics.Search.eager > 0)

let unschedulable_pair =
  (* both need the processor in [0,6) but only 10 units of work fit
     before one of the deadlines *)
  Spec.make ~name:"tight"
    ~tasks:
      [
        Task.make ~name:"a" ~wcet:5 ~deadline:5 ~period:10 ();
        Task.make ~name:"b" ~wcet:5 ~deadline:6 ~period:10 ();
      ]
    ()

let test_infeasible_detected () =
  match solve unschedulable_pair with
  | _, Error Search.Infeasible, metrics ->
    check_bool "did some work" true (metrics.Search.stored > 0)
  | _, Error Search.Budget_exhausted, _ -> Alcotest.fail "budget, not proof"
  | _, Ok _, _ -> Alcotest.fail "should be unschedulable"

let test_budget_exhaustion () =
  let options = { Search.default_options with max_stored = 2 } in
  match solve ~options Case_studies.mine_pump with
  | _, Error Search.Budget_exhausted, metrics ->
    check_int "stored at the budget" 2 metrics.Search.stored
  | _, (Ok _ | Error Search.Infeasible), _ ->
    Alcotest.fail "expected budget exhaustion"

let test_partial_order_off_same_answer () =
  let options = { Search.default_options with partial_order = false } in
  expect_feasible ~options "fig8 without pruning" Case_studies.fig8_preemptive;
  let _, _, with_po = solve Case_studies.fig8_preemptive in
  let _, _, without_po = solve ~options Case_studies.fig8_preemptive in
  check_int "no eager states when disabled" 0 without_po.Search.eager;
  check_bool "pruning stores fewer states" true
    (with_po.Search.stored < without_po.Search.stored)

let test_all_policies_feasible () =
  List.iter
    (fun (name, policy) ->
      let options = { Search.default_options with policy } in
      expect_feasible ~options ("fig8 under " ^ name) Case_studies.fig8_preemptive;
      expect_feasible ~options ("quickstart under " ^ name)
        Case_studies.quickstart)
    Priority.all

let test_greedy_trap_needs_inserted_idle () =
  (match solve Case_studies.greedy_trap with
  | _, Ok _, _ -> ()
  | _, Error f, _ ->
    Alcotest.failf "greedy trap (work-conserving branch set): %s"
      (Search.failure_to_string f));
  let options = { Search.default_options with latest_release = true } in
  expect_feasible ~options "greedy trap with latest-release"
    Case_studies.greedy_trap

let test_deterministic () =
  let _, o1, m1 = solve Case_studies.fig8_preemptive in
  let _, o2, m2 = solve Case_studies.fig8_preemptive in
  (match o1, o2 with
  | Ok s1, Ok s2 ->
    check_bool "same schedule" true (s1.Schedule.entries = s2.Schedule.entries)
  | _ -> Alcotest.fail "expected feasible");
  check_int "same stored count" m1.Search.stored m2.Search.stored

let test_schedule_spans_hyperperiod () =
  let model, outcome, _ = solve Case_studies.mine_pump in
  match outcome with
  | Ok schedule ->
    check_int "every required firing present"
      (Translate.minimum_firings model)
      (Schedule.length schedule);
    check_bool "makespan within hyper-period" true
      (Schedule.makespan schedule <= model.Translate.horizon)
  | Error _ -> Alcotest.fail "infeasible"

(* Found schedules on random specs always certify; infeasibility
   answers must agree with a preemptive-EDF necessary check (if EDF
   with full preemption schedules it and there are no relations, the
   DFS must not claim infeasible for preemptive task sets). *)
let prop_found_schedules_certify =
  qcheck ~count:60 "found schedules certify" arbitrary_spec (fun spec ->
      match solve spec with
      | model, Ok schedule, _ ->
        let segments = Timeline.of_schedule model schedule in
        Result.is_ok (Validator.check model segments)
      | _, Error Search.Infeasible, _ -> true
      | _, Error Search.Budget_exhausted, _ -> true)

let suite =
  [
    case "case studies are schedulable" test_case_studies_feasible;
    slow_case "mine pump statistics match the paper's regime"
      test_mine_pump_statistics;
    case "infeasibility detected" test_infeasible_detected;
    case "budget exhaustion" test_budget_exhaustion;
    case "partial-order ablation" test_partial_order_off_same_answer;
    case "all ordering policies" test_all_policies_feasible;
    case "greedy trap" test_greedy_trap_needs_inserted_idle;
    case "search is deterministic" test_deterministic;
    case "schedule covers the hyper-period" test_schedule_spans_hyperperiod;
    prop_found_schedules_certify;
  ]
