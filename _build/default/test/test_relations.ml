open Ezrt_tpn
module Relations = Ezrt_blocks.Relations
open Test_util

(* Minimal harness: two "finish" transitions feeding relation
   structures that gate two "release" transitions. *)
let harness () =
  let b = Pnet.Builder.create "relations" in
  let src_a = Pnet.Builder.add_place b ~tokens:1 "src_a" in
  let fin_a = Pnet.Builder.add_transition b "fin_a" Time_interval.zero in
  Pnet.Builder.arc_pt b src_a fin_a;
  let src_b = Pnet.Builder.add_place b ~tokens:1 "src_b" in
  let rel_b = Pnet.Builder.add_transition b "rel_b" Time_interval.zero in
  Pnet.Builder.arc_pt b src_b rel_b;
  let done_b = Pnet.Builder.add_place b "done_b" in
  Pnet.Builder.arc_tp b rel_b done_b;
  (b, fin_a, rel_b, done_b)

let test_precedence_gates_release () =
  let b, fin_a, rel_b, done_b = harness () in
  let rel =
    Relations.add_precedence b ~name:"ab" ~finish_of_pred:fin_a
      ~release_of_succ:rel_b
  in
  let net = Pnet.Builder.build b in
  let s0 = State.initial net in
  check_bool "successor blocked before predecessor" false
    (State.is_enabled s0 rel_b);
  let s1 = State.fire net s0 fin_a 0 in
  check_int "token banked" 1 (State.tokens s1 rel.Relations.pwp);
  let s2 = State.fire net s1 rel.Relations.tprec 0 in
  check_bool "successor released" true (State.is_enabled s2 rel_b);
  let s3 = State.fire net s2 rel_b 0 in
  check_int "successor ran" 1 (State.tokens s3 done_b);
  check_int "gate consumed" 0 (State.tokens s3 rel.Relations.pprec)

let test_exclusion_place_is_marked () =
  let b = Pnet.Builder.create "excl" in
  let slot = Relations.exclusion_place b ~name:"ab" in
  let t = Pnet.Builder.add_transition b "t" Time_interval.zero in
  Pnet.Builder.arc_pt b slot t;
  let net = Pnet.Builder.build b in
  check_int "one slot token" 1 net.Pnet.m0.(slot);
  check_string "paper naming" "pexcl_ab" (Pnet.place_name net slot)

let test_message_occupies_bus () =
  let b, fin_a, rel_b, _ = harness () in
  let bus = Pnet.Builder.add_place b ~tokens:1 "pbus" in
  let comm =
    Relations.add_message b ~name:"m" ~bus ~grant_time:2 ~comm_time:3
      ~finish_of_sender:fin_a ~release_of_receiver:rel_b
  in
  let net = Pnet.Builder.build b in
  let s1 = State.fire net (State.initial net) fin_a 0 in
  check_bool "receiver still blocked" false (State.is_enabled s1 rel_b);
  check_int "grant takes g units" 2 (State.dlb net s1 comm.Relations.tsm);
  let s2 = State.fire net s1 comm.Relations.tsm 2 in
  check_int "bus taken" 0 (State.tokens s2 bus);
  check_int "transfer takes cm units" 3 (State.dlb net s2 comm.Relations.tcm);
  let s3 = State.fire net s2 comm.Relations.tcm 3 in
  check_int "bus returned" 1 (State.tokens s3 bus);
  check_int "delivered" 1 (State.tokens s3 comm.Relations.pd);
  check_bool "receiver released" true (State.is_enabled s3 rel_b)

let test_message_rejects_negative_times () =
  let b, fin_a, rel_b, _ = harness () in
  let bus = Pnet.Builder.add_place b ~tokens:1 "pbus" in
  Alcotest.check_raises "negative"
    (Invalid_argument "add_message: negative communication time") (fun () ->
      ignore
        (Relations.add_message b ~name:"m" ~bus ~grant_time:(-1) ~comm_time:3
           ~finish_of_sender:fin_a ~release_of_receiver:rel_b))

let suite =
  [
    case "precedence gates the successor" test_precedence_gates_release;
    case "exclusion place" test_exclusion_place_is_marked;
    case "message occupies the bus" test_message_occupies_bus;
    case "negative message times rejected" test_message_rejects_negative_times;
  ]
