open Ezrt_tpn
open Test_util

let test_reachability_report () =
  let net = sequential_net () in
  let report = Analysis.reachability_report net in
  check_int "states" 3 report.Analysis.reachable_states;
  check_int "bound" 1 report.Analysis.place_bound;
  check_bool "all places safe" true
    (List.for_all
       (fun p -> Analysis.is_safe_place report p)
       [ 0; 1; 2 ])

let test_unsafe_place_detected () =
  let b = Pnet.Builder.create "accumulate" in
  let src = Pnet.Builder.add_place b ~tokens:3 "src" in
  let sink = Pnet.Builder.add_place b "sink" in
  let t = Pnet.Builder.add_transition b "t" (Time_interval.point 1) in
  Pnet.Builder.arc_pt b src t;
  Pnet.Builder.arc_tp b t sink;
  let net = Pnet.Builder.build b in
  let report = Analysis.reachability_report net in
  check_bool "source not safe" false (Analysis.is_safe_place report src);
  check_bool "sink not safe" false (Analysis.is_safe_place report sink);
  check_int "bound is 3" 3 report.Analysis.place_bound

let test_structure () =
  let net = sequential_net () in
  let st = Analysis.structure net in
  check_int "places" 3 st.Analysis.places;
  check_int "transitions" 2 st.Analysis.transitions;
  check_int "arcs" 4 st.Analysis.arcs;
  check_int "initial tokens" 1 st.Analysis.initial_tokens;
  check_int "point intervals" 1 st.Analysis.point_intervals;
  check_int "immediate" 1 st.Analysis.zero_intervals;
  check_bool "no sources" true (st.Analysis.source_transitions = []);
  check_bool "no isolated places" true (st.Analysis.isolated_places = [])

let test_structure_finds_oddities () =
  let b = Pnet.Builder.create "odd" in
  let p = Pnet.Builder.add_place b ~tokens:1 "p" in
  let _iso = Pnet.Builder.add_place b "island" in
  let t = Pnet.Builder.add_transition b "sink_t" Time_interval.zero in
  Pnet.Builder.arc_pt b p t;
  let net = Pnet.Builder.build b in
  let st = Analysis.structure net in
  check_bool "sink transition found" true
    (st.Analysis.source_transitions = [ "sink_t" ]);
  check_bool "isolated place found" true
    (st.Analysis.isolated_places = [ "island" ])

let test_mine_pump_resources_safe () =
  (* The processor place must be 1-safe in every reachable state of a
     small translated model. *)
  let model = Ezrt_blocks.Translate.translate Ezrt_spec.Case_studies.fig3_precedence in
  let report =
    Analysis.reachability_report ~max_states:20_000 model.Ezrt_blocks.Translate.net
  in
  check_bool "explored fully" false report.Analysis.truncated;
  List.iter
    (fun p ->
      check_bool "resource place safe" true (Analysis.is_safe_place report p))
    model.Ezrt_blocks.Translate.resource_places

let suite =
  [
    case "reachability report" test_reachability_report;
    case "unsafe places detected" test_unsafe_place_detected;
    case "structure summary" test_structure;
    case "structure finds oddities" test_structure_finds_oddities;
    case "translated resources are safe" test_mine_pump_resources_safe;
  ]
