module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Message = Ezrt_spec.Message
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let test_task_defaults () =
  let t = Task.make ~name:"T" ~wcet:2 ~deadline:5 ~period:10 () in
  check_string "id defaults to name" "T" t.Task.id;
  check_int "phase" 0 t.Task.phase;
  check_int "release" 0 t.Task.release;
  check_bool "mode" true (t.Task.mode = Task.Non_preemptive);
  check_string "processor" "cpu0" t.Task.processor;
  check_bool "no code" true (t.Task.code = None)

let test_scheduling_mode_strings () =
  check_string "NP" "NP" (Task.scheduling_mode_to_string Task.Non_preemptive);
  check_string "P" "P" (Task.scheduling_mode_to_string Task.Preemptive);
  check_bool "parse NP" true
    (Task.scheduling_mode_of_string "NP" = Some Task.Non_preemptive);
  check_bool "parse preemptive" true
    (Task.scheduling_mode_of_string "preemptive" = Some Task.Preemptive);
  check_bool "parse junk" true (Task.scheduling_mode_of_string "x" = None)

let test_instances_in () =
  let t = Task.make ~name:"T" ~wcet:1 ~deadline:5 ~period:80 () in
  check_int "375 instances in 30000" 375 (Task.instances_in t 30000);
  check_int "1 instance in its period" 1 (Task.instances_in t 80)

let test_hyperperiod_mine_pump () =
  check_int "H = 30000" 30000 (Spec.hyperperiod Case_studies.mine_pump);
  check_int "782 instances" Case_studies.mine_pump_expected_instances
    (Spec.total_instances Case_studies.mine_pump)

let test_hyperperiod_simple () =
  let tasks =
    [
      Task.make ~name:"a" ~wcet:1 ~deadline:4 ~period:4 ();
      Task.make ~name:"b" ~wcet:1 ~deadline:6 ~period:6 ();
    ]
  in
  check_int "lcm(4,6)" 12 (Spec.hyperperiod (Spec.make ~name:"s" ~tasks ()))

let test_hyperperiod_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Spec.hyperperiod: no tasks")
    (fun () -> ignore (Spec.hyperperiod (Spec.make ~name:"e" ~tasks:[] ())))

let test_utilization () =
  let u = Spec.utilization Case_studies.mine_pump in
  check_bool "mine pump ~0.3045" true (abs_float (u -. 0.3045) < 0.0001)

let test_find_task () =
  let spec = Case_studies.mine_pump in
  check_bool "finds PMC" true (Spec.find_task spec "PMC" <> None);
  check_bool "by name" true (Spec.find_task_by_name spec "SDL" <> None);
  check_bool "missing" true (Spec.find_task spec "NOPE" = None);
  check_int "ten ids" 10 (List.length (Spec.task_ids spec))

let test_exclusion_normalization () =
  let spec =
    Spec.make ~name:"x"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:1 ~deadline:5 ~period:5 ();
          Task.make ~name:"b" ~wcet:1 ~deadline:5 ~period:5 ();
        ]
      ~exclusions:[ ("b", "a"); ("a", "b") ]
      ()
  in
  check_int "deduplicated" 1 (List.length spec.Spec.exclusions);
  check_bool "normalized" true (List.hd spec.Spec.exclusions = ("a", "b"));
  check_bool "symmetric query" true (Spec.excludes spec "b" "a")

let test_precedes () =
  let spec = Case_studies.fig3_precedence in
  check_bool "T1 precedes T2" true (Spec.precedes spec "T1" "T2");
  check_bool "not reflexive" false (Spec.precedes spec "T2" "T1")

let test_message_defaults () =
  let m = Message.make ~name:"m" ~sender:"a" ~receiver:"b" () in
  check_string "bus" "bus0" m.Message.bus;
  check_int "duration" 1 (Message.duration m);
  let m2 =
    Message.make ~name:"m2" ~sender:"a" ~receiver:"b" ~grant_time:2
      ~comm_time:3 ()
  in
  check_int "duration sums" 5 (Message.duration m2)

let prop_hyperperiod_divisible =
  qcheck "every period divides the hyper-period" arbitrary_spec (fun spec ->
      let h = Spec.hyperperiod spec in
      List.for_all
        (fun (t : Task.t) -> h mod t.Task.period = 0)
        spec.Spec.tasks)

let prop_total_instances =
  qcheck "total instances = sum of H/p" arbitrary_spec (fun spec ->
      let h = Spec.hyperperiod spec in
      Spec.total_instances spec
      = List.fold_left
          (fun acc (t : Task.t) -> acc + (h / t.Task.period))
          0 spec.Spec.tasks)

let suite =
  [
    case "task defaults" test_task_defaults;
    case "scheduling mode strings" test_scheduling_mode_strings;
    case "instances_in" test_instances_in;
    case "mine pump hyper-period and instances" test_hyperperiod_mine_pump;
    case "hyper-period lcm" test_hyperperiod_simple;
    case "empty spec rejected" test_hyperperiod_empty_rejected;
    case "utilization" test_utilization;
    case "find task" test_find_task;
    case "exclusion normalization" test_exclusion_normalization;
    case "precedes" test_precedes;
    case "message defaults" test_message_defaults;
    prop_hyperperiod_divisible;
    prop_total_instances;
  ]
