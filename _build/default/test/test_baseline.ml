module Sim = Ezrt_baseline.Sim
module Compare = Ezrt_baseline.Compare
module Translate = Ezrt_blocks.Translate
module Validator = Ezrt_sched.Validator
module Timeline = Ezrt_sched.Timeline
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let test_policies_schedule_easy_sets () =
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun (sname, spec) ->
          if sname <> "greedy-trap" && sname <> "mine-pump" then begin
            let result = Sim.simulate policy spec in
            check_bool (pname ^ " schedules " ^ sname) true result.Sim.feasible;
            (* a feasible runtime simulation must satisfy the full
               specification, word for word *)
            let model = Translate.translate spec in
            match Validator.check model result.Sim.segments with
            | Ok () -> ()
            | Error vs ->
              Alcotest.failf "%s/%s: %s" pname sname
                (Validator.violation_to_string (List.hd vs))
          end)
        Case_studies.all)
    Sim.all_policies

(* The classic non-preemptive EDF anomaly shows up on the paper's own
   case study: at t=75 EDF greedily starts the 25-unit CH4H, so PMC#1
   (arrival 80, deadline 100) can no longer start by 90 — while the
   pre-runtime DFS schedules the same task set (test_search).  This is
   precisely the motivation for pre-runtime synthesis. *)
let test_mine_pump_edf () =
  let result = Sim.simulate Sim.Edf Case_studies.mine_pump in
  check_bool "np-EDF misses on the mine pump" false result.Sim.feasible;
  match result.Sim.first_miss with
  | Some miss ->
    check_int "the victim is PMC" 0 miss.Sim.task;
    check_bool "early in the hyper-period" true (miss.Sim.time < 200)
  | None -> Alcotest.fail "expected a recorded miss"

let test_greedy_trap_all_fail () =
  List.iter
    (fun (pname, policy) ->
      let result = Sim.simulate policy Case_studies.greedy_trap in
      check_bool (pname ^ " misses") false result.Sim.feasible;
      match result.Sim.first_miss with
      | Some miss ->
        check_int (pname ^ " urgent task misses") 1 miss.Sim.task
      | None -> Alcotest.fail "expected a recorded miss")
    Sim.all_policies

let test_preemption_counted () =
  let result = Sim.simulate Sim.Edf Case_studies.fig8_preemptive in
  check_bool "feasible" true result.Sim.feasible;
  check_bool "preemptions occur" true (result.Sim.preemptions > 0)

let test_np_job_runs_to_completion () =
  (* a long np job must not be preempted even when a shorter-deadline
     job arrives mid-flight *)
  let spec =
    Spec.make ~name:"np-block"
      ~tasks:
        [
          Task.make ~name:"long" ~wcet:4 ~deadline:20 ~period:20 ();
          Task.make ~name:"short" ~phase:1 ~wcet:1 ~deadline:10 ~period:20 ();
        ]
      ()
  in
  let result = Sim.simulate Sim.Edf spec in
  check_bool "feasible" true result.Sim.feasible;
  let long_segments =
    List.filter (fun (s : Timeline.segment) -> s.Timeline.task = 0)
      result.Sim.segments
  in
  check_int "np job in one piece" 1 (List.length long_segments)

let test_exclusion_respected () =
  let result = Sim.simulate Sim.Edf Case_studies.fig4_exclusion in
  check_bool "feasible" true result.Sim.feasible;
  let model = Translate.translate Case_studies.fig4_exclusion in
  check_bool "no interleaving" true
    (Result.is_ok (Validator.check model result.Sim.segments))

let test_invalid_spec_rejected () =
  match Sim.simulate Sim.Edf (Spec.make ~name:"e" ~tasks:[] ()) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

let test_compare_rows () =
  let rows = Compare.run_all Case_studies.quickstart in
  check_int "four approaches" 4 (List.length rows);
  check_bool "all feasible" true (List.for_all (fun r -> r.Compare.feasible) rows);
  let trap = Compare.run_all Case_studies.greedy_trap in
  let feasible_names =
    List.filter_map
      (fun r -> if r.Compare.feasible then Some r.Compare.approach else None)
      trap
  in
  check_bool "only the pre-runtime approach survives the trap" true
    (feasible_names = [ "pre-runtime (dfs)" ])

(* Agreement property: whenever a runtime policy schedules a generated
   spec, the pre-runtime search must too (it subsumes priority-driven
   schedules). *)
let prop_dfs_subsumes_runtime =
  qcheck ~count:40 "DFS subsumes feasible runtime schedules" arbitrary_spec
    (fun spec ->
      let edf = Sim.simulate Sim.Edf spec in
      if not edf.Sim.feasible then true
      else
        let model = Translate.translate spec in
        match Ezrt_sched.Search.find_schedule model with
        | Ok _, _ -> true
        | Error _, _ -> false)

let test_fault_cascades_in_runtime_scheduling () =
  let spec =
    Spec.make ~name:"overrun-pair"
      ~tasks:
        [
          Task.make ~name:"blocker" ~wcet:2 ~deadline:20 ~period:20 ();
          Task.make ~name:"victim" ~phase:1 ~wcet:3 ~deadline:6 ~period:20 ();
        ]
      ()
  in
  (* fault-free: feasible *)
  check_bool "feasible without fault" true
    (Sim.simulate Sim.Edf spec).Sim.feasible;
  (* small overrun absorbed by slack *)
  let small = [ { Sim.f_task = 0; f_instance = 0; f_extra = 1 } ] in
  check_bool "small fault absorbed" true
    (Sim.simulate ~faults:small Sim.Edf spec).Sim.feasible;
  (* larger overrun of the np blocker cascades onto the healthy victim *)
  let big = [ { Sim.f_task = 0; f_instance = 0; f_extra = 4 } ] in
  let result = Sim.simulate ~faults:big Sim.Edf spec in
  check_bool "cascades" false result.Sim.feasible;
  match result.Sim.first_miss with
  | Some miss -> check_int "the victim misses, not the faulty task" 1 miss.Sim.task
  | None -> Alcotest.fail "expected a miss"

let suite =
  [
    case "WCET overruns cascade under runtime scheduling"
      test_fault_cascades_in_runtime_scheduling;
    case "policies schedule the easy case studies"
      test_policies_schedule_easy_sets;
    slow_case "EDF schedules the mine pump" test_mine_pump_edf;
    case "greedy trap defeats every policy" test_greedy_trap_all_fail;
    case "preemptions counted" test_preemption_counted;
    case "np jobs run to completion" test_np_job_runs_to_completion;
    case "exclusion respected" test_exclusion_respected;
    case "invalid specs rejected" test_invalid_spec_rejected;
    case "comparison rows" test_compare_rows;
    prop_dfs_subsumes_runtime;
  ]
