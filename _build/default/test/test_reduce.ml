open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let dead_net () =
  let b = Pnet.Builder.create "deadish" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let p1 = Pnet.Builder.add_place b "p1" in
  let starved = Pnet.Builder.add_place b "starved" in
  let orphan = Pnet.Builder.add_place b "orphan" in
  ignore orphan;
  let t_live = Pnet.Builder.add_transition b "t_live" Time_interval.zero in
  Pnet.Builder.arc_pt b p0 t_live;
  Pnet.Builder.arc_tp b t_live p1;
  (* t_dead needs [starved], which nothing ever marks *)
  let t_dead = Pnet.Builder.add_transition b "t_dead" Time_interval.zero in
  Pnet.Builder.arc_pt b starved t_dead;
  Pnet.Builder.arc_tp b t_dead p1;
  (* t_chained is dead transitively: its input comes only from t_dead *)
  let chained = Pnet.Builder.add_place b "chained" in
  Pnet.Builder.arc_tp b t_dead chained;
  let t_chained = Pnet.Builder.add_transition b "t_chained" Time_interval.zero in
  Pnet.Builder.arc_pt b chained t_chained;
  Pnet.Builder.arc_tp b t_chained p1;
  Pnet.Builder.build b

let test_liveness_fixpoint () =
  let net = dead_net () in
  let live = Reduce.live_transitions net in
  check_bool "t_live kept" true live.(Pnet.find_transition net "t_live");
  check_bool "t_dead removed" false live.(Pnet.find_transition net "t_dead");
  check_bool "t_chained removed (transitively)" false
    live.(Pnet.find_transition net "t_chained")

let test_cleanup_removes_dead_nodes () =
  let result = Reduce.cleanup (dead_net ()) in
  check_bool "not identity" false (Reduce.is_identity result);
  check_bool "dead transitions listed" true
    (List.sort compare result.Reduce.removed_transitions
     = [ "t_chained"; "t_dead" ]);
  check_bool "starved places removed" true
    (List.mem "starved" result.Reduce.removed_places);
  check_bool "orphan removed" true
    (List.mem "orphan" result.Reduce.removed_places);
  let net = result.Reduce.net in
  check_int "two places left" 2 (Pnet.place_count net);
  check_int "one transition left" 1 (Pnet.transition_count net);
  (* behaviour preserved on the live part *)
  let stats = Tlts.explore net in
  check_int "live behaviour intact" 2 stats.Tlts.states

let test_maps_consistent () =
  let original = dead_net () in
  let result = Reduce.cleanup original in
  Array.iteri
    (fun old_p new_p ->
      if new_p >= 0 then
        check_string "place names preserved"
          (Pnet.place_name original old_p)
          (Pnet.place_name result.Reduce.net new_p))
    result.Reduce.place_map;
  Array.iteri
    (fun old_t new_t ->
      if new_t >= 0 then
        check_string "transition names preserved"
          (Pnet.transition_name original old_t)
          (Pnet.transition_name result.Reduce.net new_t))
    result.Reduce.transition_map

let test_translated_nets_are_clean () =
  List.iter
    (fun (name, spec) ->
      if name <> "mine-pump" then begin
        let net = (Translate.translate spec).Translate.net in
        let result = Reduce.cleanup net in
        check_bool (name ^ " already clean") true (Reduce.is_identity result);
        check_int (name ^ " same size") (Pnet.place_count net)
          (Pnet.place_count result.Reduce.net)
      end)
    Case_studies.all

let test_small_nets_identity () =
  check_bool "sequential identity" true
    (Reduce.is_identity (Reduce.cleanup (sequential_net ())));
  check_bool "conflict identity" true
    (Reduce.is_identity (Reduce.cleanup (conflict_net ())))

let suite =
  [
    case "liveness fixpoint" test_liveness_fixpoint;
    case "cleanup removes dead nodes" test_cleanup_removes_dead_nodes;
    case "id maps preserve names" test_maps_consistent;
    case "translated nets are already clean" test_translated_nets_are_clean;
    case "small nets untouched" test_small_nets_identity;
  ]
