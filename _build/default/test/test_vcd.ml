module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Timeline = Ezrt_sched.Timeline
module Vcd = Ezrt_sched.Vcd
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let dump_of spec =
  let model = Translate.translate spec in
  match Search.find_schedule model with
  | Ok schedule, _ ->
    (model, Vcd.of_timeline model (Timeline.of_schedule model schedule))
  | Error f, _ -> Alcotest.failf "infeasible: %s" (Search.failure_to_string f)

let lines s = String.split_on_char '\n' s

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_header () =
  let _, dump = dump_of Case_studies.quickstart in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle dump))
    [
      "$timescale 1us $end";
      "$scope module ezrt $end";
      "$var wire 1 ! sample $end";
      "$var wire 1 \" filter $end";
      "$var wire 1 $ cpu $end";
      "$enddefinitions $end";
      "$dumpvars";
    ]

let test_edges_for_quickstart () =
  (* sample [0,2) filter [2,6) actuate [6,9): wire '!' rises at 0 and
     falls at 2, where '"' rises *)
  let _, dump = dump_of Case_studies.quickstart in
  let after_time t =
    let rec go = function
      | [] -> []
      | l :: rest -> if l = Printf.sprintf "#%d" t then rest else go rest
    in
    go (lines dump)
  in
  let until_next_time ls =
    let rec take acc = function
      | [] -> List.rev acc
      | l :: _ when String.length l > 0 && l.[0] = '#' -> List.rev acc
      | l :: rest -> take (l :: acc) rest
    in
    take [] ls
  in
  let at2 = until_next_time (after_time 2) in
  check_bool "sample falls at 2" true (List.mem "0!" at2);
  check_bool "filter rises at 2" true (List.mem "1\"" at2);
  (* cpu stays busy across the 2-boundary: no 0 for the cpu wire *)
  check_bool "cpu stays high" false (List.mem "0$" at2)

let test_cpu_falls_at_idle () =
  let _, dump = dump_of Case_studies.quickstart in
  (* work ends at 9 and the hyper-period is 20 *)
  check_bool "cpu falls at 9" true (contains ~needle:"#9\n0$" dump
                                    || contains ~needle:"#9" dump);
  check_bool "dump closed at horizon" true (contains ~needle:"#20" dump)

let test_timescale_option () =
  let model = Translate.translate Case_studies.quickstart in
  match Search.find_schedule model with
  | Error _, _ -> Alcotest.fail "infeasible"
  | Ok schedule, _ ->
    let dump =
      Vcd.of_timeline ~timescale:"1ms" model
        (Timeline.of_schedule model schedule)
    in
    check_bool "custom timescale" true (contains ~needle:"$timescale 1ms $end" dump)

let test_initial_values_zero () =
  let _, dump = dump_of Case_studies.fig8_preemptive in
  (* dumpvars section sets every wire low *)
  let rec between start stop = function
    | [] -> []
    | l :: rest ->
      if l = start then
        let rec take acc = function
          | [] -> List.rev acc
          | l :: _ when l = stop -> List.rev acc
          | l :: rest -> take (l :: acc) rest
        in
        take [] rest
      else between start stop rest
  in
  let init = between "$dumpvars" "$end" (lines dump) in
  check_int "five wires initialized (4 tasks + cpu)" 5 (List.length init);
  List.iter
    (fun l -> check_bool "starts low" true (String.length l > 0 && l.[0] = '0'))
    init

let test_file_io () =
  let model = Translate.translate Case_studies.quickstart in
  match Search.find_schedule model with
  | Error _, _ -> Alcotest.fail "infeasible"
  | Ok schedule, _ ->
    let path = Filename.temp_file "ezrt" ".vcd" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Vcd.save_file path model (Timeline.of_schedule model schedule);
        let contents = In_channel.with_open_text path In_channel.input_all in
        check_bool "written" true (String.length contents > 100))

let suite =
  [
    case "header structure" test_header;
    case "edges at segment boundaries" test_edges_for_quickstart;
    case "cpu wire falls at idle" test_cpu_falls_at_idle;
    case "timescale option" test_timescale_option;
    case "initial values" test_initial_values_zero;
    case "file io" test_file_io;
  ]
