test/test_translate.ml: Alcotest Array Ezrt_blocks Ezrt_spec Ezrt_tpn List Pnet Printf State String Test_util
