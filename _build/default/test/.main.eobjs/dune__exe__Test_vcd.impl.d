test/test_vcd.ml: Alcotest Ezrt_blocks Ezrt_sched Ezrt_spec Filename Fun In_channel List Printf String Sys Test_util
