test/test_interval.ml: Alcotest Ezrt_tpn QCheck Test_util Time_interval
