test/test_query.ml: Alcotest Ezrt_blocks Ezrt_spec Ezrt_tpn List Pnet Query State String Test_util
