test/test_blocks.ml: Alcotest Array Ezrt_blocks Ezrt_tpn List Option Pnet State Test_util Time_interval
