test/test_invariants.ml: Alcotest Array Ezrt_blocks Ezrt_spec Ezrt_tpn Invariants List Pnet QCheck State Test_util
