test/test_state_class.ml: Alcotest Ezrt_blocks Ezrt_spec Ezrt_tpn List Pnet QCheck State_class Test_util Time_interval Tlts
