test/test_stats.ml: Ezrt_spec Format List String Test_util
