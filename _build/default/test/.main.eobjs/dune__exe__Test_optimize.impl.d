test/test_optimize.ml: Alcotest Ezrt_blocks Ezrt_sched Ezrt_spec List Printf Result Test_util
