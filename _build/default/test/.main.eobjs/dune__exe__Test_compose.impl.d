test/test_compose.ml: Alcotest Analysis Array Ezrt_blocks Ezrt_tpn Fun Pnet Test_util Time_interval Tlts
