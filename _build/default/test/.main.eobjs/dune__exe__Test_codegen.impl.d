test/test_codegen.ml: Alcotest Ezrt_blocks Ezrt_codegen Ezrt_sched Ezrt_spec Filename In_channel List Out_channel Printf String Sys Test_util Unix
