test/test_util.ml: Alcotest Array Ezrt_spec Ezrt_tpn Format Fun List Pnet Printf QCheck QCheck_alcotest Time_interval
