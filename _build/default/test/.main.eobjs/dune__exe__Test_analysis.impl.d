test/test_analysis.ml: Analysis Ezrt_blocks Ezrt_spec Ezrt_tpn List Pnet Test_util Time_interval
