test/test_tlts.ml: Alcotest Array Ezrt_tpn List State String Test_util Tlts
