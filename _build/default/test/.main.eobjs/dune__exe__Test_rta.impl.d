test/test_rta.ml: Alcotest Ezrt_baseline Ezrt_spec Format Fun List Printf QCheck Result String Test_util
