test/test_pnml.ml: Alcotest Array Ezrt_blocks Ezrt_pnml Ezrt_spec Ezrt_tpn Ezrt_xml Filename Fun List Option Pnet Sys Test_util Time_interval
