test/test_vm.ml: Alcotest Ezrt_blocks Ezrt_runtime Ezrt_sched Ezrt_spec List Test_util
