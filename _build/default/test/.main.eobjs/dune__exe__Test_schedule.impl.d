test/test_schedule.ml: Alcotest Ezrt_sched Ezrt_tpn State Test_util
