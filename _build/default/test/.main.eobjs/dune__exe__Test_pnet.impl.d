test/test_pnet.ml: Alcotest Array Ezrt_tpn Format Pnet Test_util Time_interval
