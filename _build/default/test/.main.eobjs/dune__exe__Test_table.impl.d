test/test_table.ml: Alcotest Ezrt_blocks Ezrt_sched Ezrt_spec Filename List String Test_util
