test/test_xml.ml: Alcotest Char Ezrt_xml List Option QCheck String Test_util
