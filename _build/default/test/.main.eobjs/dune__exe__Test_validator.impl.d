test/test_validator.ml: Alcotest Ezrt_blocks Ezrt_sched Ezrt_spec List Test_util
