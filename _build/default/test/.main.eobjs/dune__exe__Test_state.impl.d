test/test_state.ml: Alcotest Array Ezrt_tpn List Pnet QCheck State Test_util Time_interval
