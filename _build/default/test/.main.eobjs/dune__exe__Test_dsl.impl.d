test/test_dsl.ml: Alcotest Ezrt_spec Filename Fun List Option Sys Test_util
