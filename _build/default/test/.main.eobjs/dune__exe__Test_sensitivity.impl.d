test/test_sensitivity.ml: Alcotest Ezrt_sched Ezrt_spec Format List Result String Test_util
