test/test_relations.ml: Alcotest Array Ezrt_blocks Ezrt_tpn Pnet State Test_util Time_interval
