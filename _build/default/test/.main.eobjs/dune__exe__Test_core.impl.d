test/test_core.ml: Alcotest Case_studies Ezrealtime Format List Schedule Search Spec String Target Task Test_util Validate
