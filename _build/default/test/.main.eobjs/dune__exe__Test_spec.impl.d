test/test_spec.ml: Alcotest Ezrt_spec List Test_util
