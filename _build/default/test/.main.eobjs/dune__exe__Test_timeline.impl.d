test/test_timeline.ml: Alcotest Array Ezrt_blocks Ezrt_sched Ezrt_spec Hashtbl List Option Test_util
