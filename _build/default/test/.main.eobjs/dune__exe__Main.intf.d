test/main.mli:
