test/test_tina.ml: Alcotest Array Ezrt_blocks Ezrt_spec Ezrt_tpn Filename Fun List Pnet String Sys Test_util Time_interval Tina
