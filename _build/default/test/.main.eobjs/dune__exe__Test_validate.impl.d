test/test_validate.ml: Alcotest Ezrt_spec List Test_util
