test/test_dot.ml: Dot Ezrt_tpn Pnet String Test_util Time_interval
