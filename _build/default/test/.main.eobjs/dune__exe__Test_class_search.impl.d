test/test_class_search.ml: Alcotest Ezrt_blocks Ezrt_sched Ezrt_spec List Result Test_util
