test/test_chart.ml: Alcotest Ezrt_blocks Ezrt_sched Ezrt_spec List String Test_util
