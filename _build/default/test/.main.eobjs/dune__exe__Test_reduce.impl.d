test/test_reduce.ml: Array Ezrt_blocks Ezrt_spec Ezrt_tpn List Pnet Reduce Test_util Time_interval Tlts
