test/test_pipeline.ml: Alcotest Array Case_studies Class_search Emit Ezrealtime List Printf Quality Schedule Search String Table Target Test_util Timeline Translate Validator Vm
