test/test_cli.ml: Alcotest Ezrt_spec Filename Fun In_channel Lazy List Printf String Sys Test_util Unix
