test/test_priority.ml: Alcotest Array Ezrt_blocks Ezrt_sched Ezrt_spec Ezrt_tpn Lazy List State String Test_util
