test/test_baseline.ml: Alcotest Ezrt_baseline Ezrt_blocks Ezrt_sched Ezrt_spec List Result Test_util
