test/test_dbm.ml: Dbm Ezrt_tpn QCheck Test_util
