test/test_quality.ml: Alcotest Ezrt_blocks Ezrt_sched Ezrt_spec Format List String Test_util
