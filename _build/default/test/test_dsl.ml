module Dsl = Ezrt_spec.Dsl
module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Message = Ezrt_spec.Message
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let spec_equal (a : Spec.t) (b : Spec.t) =
  a.Spec.name = b.Spec.name
  && a.Spec.disp_overhead = b.Spec.disp_overhead
  && a.Spec.tasks = b.Spec.tasks
  && List.sort compare a.Spec.precedences = List.sort compare b.Spec.precedences
  && a.Spec.exclusions = b.Spec.exclusions
  && a.Spec.messages = b.Spec.messages

let roundtrip spec =
  match Dsl.of_string (Dsl.to_string spec) with
  | Ok spec' -> spec'
  | Error e -> Alcotest.failf "roundtrip failed: %s" (Dsl.error_to_string e)

let test_roundtrip_case_studies () =
  List.iter
    (fun (name, spec) ->
      check_bool (name ^ " roundtrips") true (spec_equal spec (roundtrip spec)))
    Case_studies.all

let test_roundtrip_rich_spec () =
  let tasks =
    [
      Task.make ~id:"ez1" ~name:"sense" ~phase:2 ~release:1 ~wcet:2 ~deadline:8
        ~period:20 ~energy:7 ~mode:Task.Preemptive ~code:"read(); x < 3 && y;"
        ();
      Task.make ~id:"ez2" ~name:"act" ~wcet:3 ~deadline:20 ~period:20 ();
    ]
  in
  let messages =
    [
      Message.make ~id:"m1" ~name:"M1" ~sender:"ez1" ~receiver:"ez2"
        ~bus:"can0" ~grant_time:1 ~comm_time:2 ();
    ]
  in
  let spec =
    Spec.make ~name:"rich" ~disp_overhead:3 ~tasks ~messages
      ~precedences:[ ("ez1", "ez2") ]
      ~exclusions:[ ("ez1", "ez2") ]
      ()
  in
  check_bool "rich spec roundtrips" true (spec_equal spec (roundtrip spec))

(* The document shape of paper Fig 7. *)
let fig7 =
  {|<?xml version="1.0" encoding="UTF-8"?>
<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">
<Task precedesTasks="#ez1151891690363" identifier="ez1151891">
<processor>p124365</processor>
<name>T1</name>
<period>9</period>
<power>10</power>
<schedulingMode>NP</schedulingMode>
<computing>1</computing>
<deadline>9</deadline>
</Task>
<Task identifier="ez1151891690363">
<processor>p124365</processor>
<name>T2</name>
<period>9</period>
<power>4</power>
<schedulingMode>NP</schedulingMode>
<computing>2</computing>
<deadline>9</deadline>
</Task>
<Processor identifier="p124365"><name>at91</name></Processor>
</rt:ez-spec>|}

let test_parse_fig7 () =
  let spec =
    match Dsl.of_string fig7 with
    | Ok s -> s
    | Error e -> Alcotest.failf "fig7: %s" (Dsl.error_to_string e)
  in
  check_int "two tasks" 2 (List.length spec.Spec.tasks);
  let t1 = Option.get (Spec.find_task spec "ez1151891") in
  check_string "name" "T1" t1.Task.name;
  check_int "period" 9 t1.Task.period;
  check_int "power" 10 t1.Task.energy;
  check_int "computing" 1 t1.Task.wcet;
  check_bool "NP" true (t1.Task.mode = Task.Non_preemptive);
  check_string "processor" "p124365" t1.Task.processor;
  check_bool "precedence parsed" true
    (Spec.precedes spec "ez1151891" "ez1151891690363");
  check_bool "validates" true (Ezrt_spec.Validate.is_valid spec)

let expect_error s =
  match Dsl.of_string s with
  | Ok _ -> Alcotest.failf "expected an error for %s" s
  | Error _ -> ()

let test_errors () =
  expect_error "<wrong-root/>";
  expect_error "not xml at all";
  expect_error
    "<rt:ez-spec xmlns:rt=\"x\"><Task><name>a</name></Task></rt:ez-spec>";
  (* missing identifier *)
  expect_error
    "<rt:ez-spec xmlns:rt=\"x\"><Task identifier=\"a\"><period>oops</period>\
     <computing>1</computing><deadline>1</deadline></Task></rt:ez-spec>";
  (* bad int *)
  expect_error
    "<rt:ez-spec xmlns:rt=\"x\"><Task identifier=\"a\" \
     precedesTasks=\"noHash\"><period>5</period><computing>1</computing>\
     <deadline>5</deadline></Task></rt:ez-spec>"

let test_defaults_on_read () =
  let minimal =
    "<rt:ez-spec xmlns:rt=\"x\"><Task identifier=\"a\"><period>5</period>\
     <computing>1</computing><deadline>5</deadline></Task></rt:ez-spec>"
  in
  match Dsl.of_string minimal with
  | Error e -> Alcotest.failf "minimal: %s" (Dsl.error_to_string e)
  | Ok spec ->
    let t = List.hd spec.Spec.tasks in
    check_string "name defaults to id" "a" t.Task.name;
    check_int "phase 0" 0 t.Task.phase;
    check_bool "NP default" true (t.Task.mode = Task.Non_preemptive);
    check_string "spec name default" "untitled" spec.Spec.name

let test_file_io () =
  let path = Filename.temp_file "ezrt" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dsl.save_file path Case_studies.mine_pump;
      match Dsl.load_file path with
      | Ok spec ->
        check_bool "file roundtrip" true
          (spec_equal Case_studies.mine_pump spec)
      | Error e -> Alcotest.failf "load: %s" (Dsl.error_to_string e))

let test_load_missing_file () =
  match Dsl.load_file "/nonexistent/ezrt.xml" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

let prop_roundtrip_generated =
  qcheck ~count:100 "generated specs roundtrip" arbitrary_spec (fun spec ->
      spec_equal spec (roundtrip spec))

(* the shipped specs/ directory stays in sync with the case-study
   registry *)
let test_shipped_spec_files () =
  let dir =
    List.find_opt Sys.file_exists
      [ "../specs"; "specs"; "../../specs"; "../../../specs" ]
  in
  match dir with
  | None -> ()  (* not available in this sandbox: skip *)
  | Some dir ->
    List.iter
      (fun (name, spec) ->
        let path = Filename.concat dir (name ^ ".xml") in
        check_bool (name ^ ".xml shipped") true (Sys.file_exists path);
        match Dsl.load_file path with
        | Ok loaded -> check_bool (name ^ " in sync") true (spec_equal spec loaded)
        | Error e -> Alcotest.failf "%s: %s" name (Dsl.error_to_string e))
      Case_studies.all

let suite =
  [
    case "shipped spec files stay in sync" test_shipped_spec_files;
    case "case studies roundtrip" test_roundtrip_case_studies;
    case "rich spec roundtrips" test_roundtrip_rich_spec;
    case "parses the paper's Fig 7 document" test_parse_fig7;
    case "malformed documents rejected" test_errors;
    case "defaults on read" test_defaults_on_read;
    case "file save/load" test_file_io;
    case "missing file" test_load_missing_file;
    prop_roundtrip_generated;
  ]
