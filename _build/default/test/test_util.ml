(* Shared helpers for the test suite. *)

open Ezrt_tpn

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qcheck ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen law)

(* A tiny net: two sequential transitions
   p0 --t0[2,5]--> p1 --t1[0,0]--> p2. *)
let sequential_net () =
  let b = Pnet.Builder.create "sequential" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let p1 = Pnet.Builder.add_place b "p1" in
  let p2 = Pnet.Builder.add_place b "p2" in
  let t0 = Pnet.Builder.add_transition b "t0" (Time_interval.make 2 5) in
  let t1 = Pnet.Builder.add_transition b "t1" Time_interval.zero in
  Pnet.Builder.arc_pt b p0 t0;
  Pnet.Builder.arc_tp b t0 p1;
  Pnet.Builder.arc_pt b p1 t1;
  Pnet.Builder.arc_tp b t1 p2;
  Pnet.Builder.build b

(* A conflict net: one token, two competing transitions with different
   intervals.  p0 --t0[1,3]--> p1 and p0 --t1[2,7]--> p2. *)
let conflict_net () =
  let b = Pnet.Builder.create "conflict" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let p1 = Pnet.Builder.add_place b "p1" in
  let p2 = Pnet.Builder.add_place b "p2" in
  let t0 = Pnet.Builder.add_transition b "t0" (Time_interval.make 1 3) in
  let t1 = Pnet.Builder.add_transition b "t1" (Time_interval.make 2 7) in
  Pnet.Builder.arc_pt b p0 t0;
  Pnet.Builder.arc_tp b t0 p1;
  Pnet.Builder.arc_pt b p0 t1;
  Pnet.Builder.arc_tp b t1 p2;
  Pnet.Builder.build b

(* Random small live nets for property tests: a ring of places with
   transitions moving a token around, plus random extra arcs would risk
   deadlocks, so keep the ring pure and vary sizes/intervals. *)
let ring_net n_places seed =
  let b = Pnet.Builder.create (Printf.sprintf "ring%d-%d" n_places seed) in
  let places =
    Array.init n_places (fun i ->
        Pnet.Builder.add_place b
          ~tokens:(if i = 0 then 1 else 0)
          (Printf.sprintf "p%d" i))
  in
  Array.iteri
    (fun i _ ->
      let eft = (seed + i) mod 4 in
      let lft = eft + ((seed * (i + 3)) mod 5) in
      let t =
        Pnet.Builder.add_transition b
          (Printf.sprintf "t%d" i)
          (Time_interval.make eft lft)
      in
      Pnet.Builder.arc_pt b places.(i) t;
      Pnet.Builder.arc_tp b t places.((i + 1) mod n_places))
    places;
  Pnet.Builder.build b

(* Specification generator for property tests: task sets that are
   always well-formed (c <= d <= p, r + c <= d) with harmonic periods
   and bounded utilization, so that a reasonable fraction is
   schedulable while malformed inputs are impossible. *)
let spec_gen =
  let open QCheck.Gen in
  let task_gen i =
    let* period_pow = int_range 0 2 in
    let period = 10 * (1 lsl period_pow) in
    (* wcet <= 2 with period >= 10 keeps utilization of up to 4 tasks
       below 1.0, so generated specs always validate *)
    let* wcet = int_range 1 2 in
    let* slack = int_range 0 (period - wcet) in
    let deadline = wcet + slack in
    let* release = int_range 0 (max 0 (deadline - wcet)) in
    let* phase = int_range 0 3 in
    let* preemptive = bool in
    return
      (Ezrt_spec.Task.make
         ~name:(Printf.sprintf "t%d" i)
         ~phase ~release ~wcet ~deadline ~period
         ~mode:
           (if preemptive then Ezrt_spec.Task.Preemptive
            else Ezrt_spec.Task.Non_preemptive)
         ())
  in
  let* n = int_range 1 4 in
  let* tasks =
    List.fold_right
      (fun i acc ->
        let* rest = acc in
        let* t = task_gen i in
        return (t :: rest))
      (List.init n Fun.id) (return [])
  in
  (* relations among equal-period pairs; precedence edges only go from
     lower to higher index, so they are acyclic by construction *)
  let equal_period_pairs =
    List.concat_map
      (fun (i, (a : Ezrt_spec.Task.t)) ->
        List.filter_map
          (fun (j, (b : Ezrt_spec.Task.t)) ->
            if i < j && a.Ezrt_spec.Task.period = b.Ezrt_spec.Task.period then
              Some (a.Ezrt_spec.Task.id, b.Ezrt_spec.Task.id)
            else None)
          (List.mapi (fun j t -> (j, t)) tasks))
      (List.mapi (fun i t -> (i, t)) tasks)
  in
  let pick_subset pairs =
    List.fold_right
      (fun pair acc ->
        let* rest = acc in
        let* keep = frequency [ (1, return true); (3, return false) ] in
        return (if keep then pair :: rest else rest))
      pairs (return [])
  in
  let* precedences = pick_subset equal_period_pairs in
  let* exclusions =
    (* exclusion works across periods: draw from all index pairs *)
    let all_pairs =
      List.concat_map
        (fun (i, (a : Ezrt_spec.Task.t)) ->
          List.filter_map
            (fun (j, (b : Ezrt_spec.Task.t)) ->
              if i < j then Some (a.Ezrt_spec.Task.id, b.Ezrt_spec.Task.id)
              else None)
            (List.mapi (fun j t -> (j, t)) tasks))
        (List.mapi (fun i t -> (i, t)) tasks)
    in
    pick_subset all_pairs
  in
  (* avoid the redundant precedence+exclusion warning combination *)
  let exclusions =
    List.filter (fun pair -> not (List.mem pair precedences)) exclusions
  in
  let* messages =
    match equal_period_pairs with
    | [] -> return []
    | pairs ->
      let* want = frequency [ (1, return true); (4, return false) ] in
      if not want then return []
      else
        let* idx = int_range 0 (List.length pairs - 1) in
        let sender, receiver = List.nth pairs idx in
        (* a message also orders the pair; drop clashing relations *)
        let* comm_time = int_range 0 2 in
        return
          [ Ezrt_spec.Message.make ~name:"m0" ~sender ~receiver ~comm_time () ]
  in
  let precedences, exclusions =
    match messages with
    | [] -> (precedences, exclusions)
    | m :: _ ->
      let pair = (m.Ezrt_spec.Message.sender, m.Ezrt_spec.Message.receiver) in
      ( List.filter (fun p -> p <> pair) precedences,
        List.filter (fun p -> p <> pair) exclusions )
  in
  return
    (Ezrt_spec.Spec.make ~name:"random" ~tasks ~precedences ~exclusions
       ~messages ())

let arbitrary_spec =
  QCheck.make ~print:(fun s -> Format.asprintf "%a" Ezrt_spec.Spec.pp s) spec_gen
