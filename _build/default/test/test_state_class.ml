open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let test_initial_class () =
  let net = sequential_net () in
  let c = State_class.initial net in
  check_bool "t0 enabled" true (State_class.enabled_ids c = [ 0 ]);
  check_bool "delay is the static interval" true
    (State_class.delay_bounds net c 0 = (2, 5))

let test_fire_sequential () =
  let net = sequential_net () in
  let c0 = State_class.initial net in
  let c1 = State_class.fire net c0 0 in
  check_bool "t1 enabled" true (State_class.enabled_ids c1 = [ 1 ]);
  check_bool "immediate delay" true (State_class.delay_bounds net c1 1 = (0, 0));
  let c2 = State_class.fire net c1 1 in
  check_bool "deadlock class" true (State_class.enabled_ids c2 = [])

let test_fires_first_restriction () =
  (* t0 in [1,3], t1 in [2,7]: both can fire first (dense time) *)
  let net = conflict_net () in
  let c = State_class.initial net in
  check_bool "both firable" true
    (List.sort compare (State_class.firable net c) = [ 0; 1 ]);
  (* after restricting to t1-first, t0 must not have fired: its new
     window starts at 0 *)
  let c1 = State_class.fire net c 1 in
  check_bool "t0 gone (conflict consumed the token)" true
    (State_class.enabled_ids c1 = [])

let test_urgent_excludes_slow () =
  (* t0 [0,0] and t1 [2,5] in parallel: t1 cannot fire first *)
  let b = Pnet.Builder.create "urgent" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let p1 = Pnet.Builder.add_place b ~tokens:1 "p1" in
  let q0 = Pnet.Builder.add_place b "q0" in
  let q1 = Pnet.Builder.add_place b "q1" in
  let t0 = Pnet.Builder.add_transition b "t0" Time_interval.zero in
  let t1 = Pnet.Builder.add_transition b "t1" (Time_interval.make 2 5) in
  Pnet.Builder.arc_pt b p0 t0;
  Pnet.Builder.arc_tp b t0 q0;
  Pnet.Builder.arc_pt b p1 t1;
  Pnet.Builder.arc_tp b t1 q1;
  let net = Pnet.Builder.build b in
  let c = State_class.initial net in
  check_bool "only the urgent one" true (State_class.firable net c = [ t0 ]);
  (* after t0, t1's clock kept running from the start: window still
     [2,5] relative to the (zero-delay) firing *)
  let c1 = State_class.fire net c t0 in
  check_bool "persistent window" true
    (State_class.delay_bounds net c1 t1 = (2, 5))

let test_persistence_shifts_window () =
  (* t0 [1,1] fires; persistent t1 [2,5] keeps its clock: new window
     is [2-1, 5-1] = [1,4] *)
  let b = Pnet.Builder.create "shift" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let p1 = Pnet.Builder.add_place b ~tokens:1 "p1" in
  let q0 = Pnet.Builder.add_place b "q0" in
  let q1 = Pnet.Builder.add_place b "q1" in
  let t0 = Pnet.Builder.add_transition b "t0" (Time_interval.point 1) in
  let t1 = Pnet.Builder.add_transition b "t1" (Time_interval.make 2 5) in
  Pnet.Builder.arc_pt b p0 t0;
  Pnet.Builder.arc_tp b t0 q0;
  Pnet.Builder.arc_pt b p1 t1;
  Pnet.Builder.arc_tp b t1 q1;
  let net = Pnet.Builder.build b in
  let c1 = State_class.fire net (State_class.initial net) t0 in
  check_bool "shifted window" true
    (State_class.delay_bounds net c1 t1 = (1, 4))

let test_priority_filter () =
  let b = Pnet.Builder.create "prio" in
  let p = Pnet.Builder.add_place b ~tokens:1 "p" in
  let q = Pnet.Builder.add_place b "q" in
  let t0 = Pnet.Builder.add_transition b ~priority:1 "t0" Time_interval.zero in
  let t1 = Pnet.Builder.add_transition b ~priority:2 "t1" Time_interval.zero in
  Pnet.Builder.arc_pt b p t0;
  Pnet.Builder.arc_pt b p t1;
  Pnet.Builder.arc_tp b t0 q;
  Pnet.Builder.arc_tp b t1 q;
  let net = Pnet.Builder.build b in
  check_bool "priority filter applies" true
    (State_class.firable net (State_class.initial net) = [ t0 ]);
  ignore t1

let test_fire_rejects_non_firable () =
  let net = sequential_net () in
  let c = State_class.initial net in
  Alcotest.check_raises "disabled"
    (Invalid_argument "State_class.fire: t1 not enabled") (fun () ->
      ignore (State_class.fire net c 1))

let test_explore_counts () =
  let net = sequential_net () in
  let stats = State_class.explore net in
  check_int "three classes" 3 stats.State_class.classes;
  check_int "two edges" 2 stats.State_class.edges;
  check_int "one deadlock" 1 stats.State_class.deadlocks;
  (* the class graph coalesces the discrete clock valuations *)
  let discrete = Tlts.explore ~mode:`All_times net in
  check_bool "not larger than all-times discrete" true
    (stats.State_class.classes <= discrete.Tlts.states)

let test_truncation () =
  let net = ring_net 5 3 in
  let stats = State_class.explore ~max_classes:2 net in
  check_bool "truncated" true stats.State_class.truncated

let test_markings_agree_on_case_studies () =
  List.iter
    (fun (name, spec) ->
      let net = (Translate.translate spec).Translate.net in
      check_bool (name ^ " markings agree") true
        (State_class.reachable_markings_agree ~max_states:20_000 net))
    [
      ("fig3", Case_studies.fig3_precedence);
      ("quickstart", Case_studies.quickstart);
      ("greedy-trap", Case_studies.greedy_trap);
    ]

let test_class_graph_covers_discrete () =
  (* the discrete walk never reaches a marking the class graph lacks *)
  List.iter
    (fun (name, spec) ->
      let net = (Translate.translate spec).Translate.net in
      let cmp = State_class.compare_reachable_markings ~max_states:20_000 net in
      check_int (name ^ ": no discrete-only markings") 0
        cmp.State_class.discrete_only)
    [
      ("fig3", Case_studies.fig3_precedence);
      ("fig4", Case_studies.fig4_exclusion);
      ("quickstart", Case_studies.quickstart);
      ("greedy-trap", Case_studies.greedy_trap);
    ]

let test_inclusion_abstraction () =
  List.iter
    (fun (name, spec) ->
      let net = (Translate.translate spec).Translate.net in
      let plain = State_class.explore ~max_classes:50_000 net in
      let incl = State_class.explore ~max_classes:50_000 ~inclusion:true net in
      check_bool (name ^ ": never larger") true
        (incl.State_class.classes <= plain.State_class.classes);
      check_bool (name ^ ": not truncated") false incl.State_class.truncated)
    [
      ("fig3", Case_studies.fig3_precedence);
      ("fig4", Case_studies.fig4_exclusion);
      ("quickstart", Case_studies.quickstart);
      ("greedy-trap", Case_studies.greedy_trap);
    ];
  (* fig4's per-unit interleavings collapse strongly under inclusion *)
  let net = (Translate.translate Case_studies.fig4_exclusion).Translate.net in
  let plain = State_class.explore net in
  let incl = State_class.explore ~inclusion:true net in
  check_bool "substantial shrinkage on fig4" true
    (incl.State_class.classes * 2 < plain.State_class.classes)

let prop_rings_agree =
  qcheck ~count:40 "class and discrete markings agree on rings"
    QCheck.(pair (int_range 2 5) (int_range 0 60))
    (fun (n, seed) ->
      State_class.reachable_markings_agree ~max_states:5_000 (ring_net n seed))

let suite =
  [
    case "initial class" test_initial_class;
    case "fire sequential" test_fire_sequential;
    case "fires-first restriction" test_fires_first_restriction;
    case "urgent excludes slow" test_urgent_excludes_slow;
    case "persistence shifts windows" test_persistence_shifts_window;
    case "priority filter" test_priority_filter;
    case "fire rejects non-firable" test_fire_rejects_non_firable;
    case "explore counts" test_explore_counts;
    case "truncation" test_truncation;
    case "inclusion abstraction" test_inclusion_abstraction;
    case "markings agree with discrete TLTS" test_markings_agree_on_case_studies;
    case "class graph covers the discrete walk" test_class_graph_covers_discrete;
    prop_rings_agree;
  ]
