module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Table = Ezrt_sched.Table
module Target = Ezrt_codegen.Target
module Emit = Ezrt_codegen.Emit
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let artifact_of spec =
  let model = Translate.translate spec in
  match Search.find_schedule model with
  | Ok schedule, _ -> (model, Table.of_schedule model schedule)
  | Error f, _ -> Alcotest.failf "infeasible: %s" (Search.failure_to_string f)

let test_c_identifier () =
  check_string "plain" "TaskA" (Emit.c_identifier "TaskA");
  check_string "dashes" "mine_pump" (Emit.c_identifier "mine-pump");
  check_string "leading digit" "T42nd" (Emit.c_identifier "42nd");
  check_string "symbols" "a_b_c" (Emit.c_identifier "a.b c")

let test_schedule_table_rendering () =
  let model, items = artifact_of Case_studies.fig8_preemptive in
  let table = Emit.schedule_table model items in
  check_bool "array" true (contains ~needle:"struct ScheduleItem scheduleTable" table);
  check_bool "fig8 comments" true (contains ~needle:"preempts" table);
  check_bool "resume flag" true (contains ~needle:"true" table);
  check_bool "function pointers" true (contains ~needle:"TaskA" table)

let test_program_structure () =
  let model, items = artifact_of Case_studies.quickstart in
  let program = Emit.program model items in
  List.iter
    (fun needle ->
      check_bool needle true (contains ~needle program))
    [
      "#define EZRT_SCHEDULE_SIZE 3";
      "#define EZRT_HYPER_PERIOD 20";
      "struct ScheduleItem";
      "void sample(void)";
      "void filter(void)";
      "void actuate(void)";
      "ezrt_dispatch";
      "ezrt_timer_isr";
      "EZRT_SAVE_CONTEXT";
      "EZRT_RESTORE_CONTEXT";
      "int main(void)";
      "adc_read(&sample_buffer);" (* behavioural source embedded *);
    ]

let test_all_targets_emit () =
  let model, items = artifact_of Case_studies.quickstart in
  List.iter
    (fun (name, target) ->
      let program = Emit.program ~target model items in
      check_bool (name ^ " nonempty") true (String.length program > 500);
      check_bool (name ^ " names itself") true (contains ~needle:name program))
    Target.all

let test_8051_postfix_interrupt () =
  let model, items = artifact_of Case_studies.quickstart in
  let program = Emit.program ~target:Target.i8051 model items in
  check_bool "SDCC style" true
    (contains ~needle:"void ezrt_timer_isr(void) __interrupt(1)" program)

let test_embedded_idle_loop () =
  let model, items = artifact_of Case_studies.quickstart in
  let program = Emit.program ~target:Target.x86 model items in
  check_bool "hlt idle" true (contains ~needle:"hlt" program);
  check_bool "no hosted harness" false (contains ~needle:"EZRT_HOSTED_CYCLES" program)

let test_target_find () =
  check_bool "finds arm9" true (Target.find "arm9" = Some Target.arm9);
  check_bool "unknown" true (Target.find "z80" = None)

(* Integration: the hosted program compiles with gcc -Werror and its
   runtime trace equals the prediction from the schedule table. *)
let compile_and_run ?(cflags = "") ?layout spec =
  let model, items = artifact_of spec in
  let program = Emit.program ?layout model items in
  let dir = Filename.temp_file "ezrt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_path = Filename.concat dir "gen.c" in
  let exe_path = Filename.concat dir "gen" in
  Out_channel.with_open_text c_path (fun oc ->
      Out_channel.output_string oc program);
  let cmd =
    Printf.sprintf "gcc -std=c99 -Wall -Wextra -Werror %s -o %s %s 2>&1"
      cflags (Filename.quote exe_path) (Filename.quote c_path)
  in
  let ic = Unix.open_process_in cmd in
  let gcc_out = In_channel.input_all ic in
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "gcc failed:\n%s" gcc_out);
  let ic = Unix.open_process_in (Filename.quote exe_path) in
  let output = In_channel.input_all ic in
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "generated program crashed");
  Sys.remove c_path;
  Sys.remove exe_path;
  Unix.rmdir dir;
  (model, items, String.split_on_char '\n' (String.trim output))

let test_hosted_program_runs () =
  if Sys.command "command -v gcc >/dev/null 2>&1" <> 0 then ()
  else begin
    let model, items, lines = compile_and_run Case_studies.fig8_preemptive in
    let predicted =
      List.map (Emit.trace_line_of_item model ~base:0) items
    in
    let trace_lines =
      List.filter
        (fun l -> String.length l > 2 && String.sub l 0 2 = "t=")
        lines
    in
    check_int "row count" (List.length predicted) (List.length trace_lines);
    List.iter2 (fun want got -> check_string "trace line" want got) predicted
      trace_lines;
    match List.rev lines with
    | last :: _ ->
      check_bool "completion banner" true
        (contains ~needle:"completed 1 hyper-period" last)
    | [] -> Alcotest.fail "no output"
  end

let test_hosted_quickstart_runs () =
  if Sys.command "command -v gcc >/dev/null 2>&1" <> 0 then ()
  else begin
    let model, items, lines = compile_and_run Case_studies.quickstart in
    let predicted = List.map (Emit.trace_line_of_item model ~base:0) items in
    let trace_lines =
      List.filter (fun l -> String.length l > 2 && String.sub l 0 2 = "t=") lines
    in
    List.iter2 (fun want got -> check_string "trace line" want got) predicted
      trace_lines
  end

(* the dispatcher wraps around the table: cycle 2's rows run at
   hyper-period offsets *)
let test_hosted_multi_cycle () =
  if Sys.command "command -v gcc >/dev/null 2>&1" <> 0 then ()
  else begin
    let model, items, lines =
      compile_and_run ~cflags:"-DEZRT_HOSTED_CYCLES=2" Case_studies.quickstart
    in
    let horizon = model.Translate.horizon in
    let predicted =
      List.map (Emit.trace_line_of_item model ~base:0) items
      @ List.map (Emit.trace_line_of_item model ~base:horizon) items
    in
    let trace_lines =
      List.filter (fun l -> String.length l > 2 && String.sub l 0 2 = "t=") lines
    in
    check_int "two cycles of rows" (List.length predicted)
      (List.length trace_lines);
    List.iter2 (fun want got -> check_string "trace line" want got) predicted
      trace_lines
  end

let test_footprint () =
  let _, items = artifact_of Case_studies.quickstart in
  (* 8051 small model: 2+1(+1 pad)+2+2 = 8 bytes per row *)
  let fp8051 = Emit.table_footprint Target.i8051 items in
  check_int "8051 row bytes" 8 fp8051.Emit.row_bytes;
  check_int "8051 table bytes" (3 * 8) fp8051.Emit.table_bytes;
  check_bool "fits a 4 KiB part" true (fp8051.Emit.fits_flash = Some true);
  (* 64-bit hosted: 4+1 pad-> 8? start 4 + flag 1 -> task at 8? layout:
     4 + 1, pad to 4 -> task_id at 8..12, pointer at 16..24 -> 24 *)
  let fp_host = Emit.table_footprint Target.hosted items in
  check_int "hosted row bytes" 24 fp_host.Emit.row_bytes;
  check_bool "hosted has no flash budget" true (fp_host.Emit.fits_flash = None);
  (* the mine pump's 782 rows cannot fit the classic 8051 *)
  let _, mine_items = artifact_of Case_studies.mine_pump in
  let fp_mine = Emit.table_footprint Target.i8051 mine_items in
  check_bool "mine pump exceeds 4 KiB" true (fp_mine.Emit.fits_flash = Some false);
  check_int "one row per execution part" 782 fp_mine.Emit.rows

let test_compact_footprint () =
  let _, items = artifact_of Case_studies.mine_pump in
  let fp = Emit.table_footprint ~layout:Emit.Compact_table Target.i8051 items in
  check_int "3 bytes per row" 3 fp.Emit.row_bytes;
  check_bool "mine pump fits the 8051 compactly" true
    (fp.Emit.fits_flash = Some true)

let test_compact_trace_identical () =
  if Sys.command "command -v gcc >/dev/null 2>&1" <> 0 then ()
  else begin
    let model, items, struct_lines =
      compile_and_run Case_studies.fig8_preemptive
    in
    ignore model;
    ignore items;
    let _, _, compact_lines =
      compile_and_run ~layout:Emit.Compact_table Case_studies.fig8_preemptive
    in
    check_bool "identical dispatch traces" true (struct_lines = compact_lines)
  end

let test_compact_limits () =
  let model, items = artifact_of Case_studies.quickstart in
  (* horizon must fit 16 bits *)
  let big =
    Ezrt_spec.Spec.make ~name:"big"
      ~tasks:
        [ Ezrt_spec.Task.make ~name:"t" ~wcet:1 ~deadline:70000 ~period:70000 () ]
      ()
  in
  ignore model;
  ignore items;
  let big_model = Translate.translate big in
  (match Search.find_schedule big_model with
  | Ok schedule, _ -> (
    let big_items = Table.of_schedule big_model schedule in
    match Emit.program ~layout:Emit.Compact_table big_model big_items with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected the 16-bit limit to trip")
  | Error _, _ -> Alcotest.fail "single big task must schedule")

let suite =
  [
    case "c identifiers" test_c_identifier;
    slow_case "table footprints" test_footprint;
    case "compact footprint" test_compact_footprint;
    slow_case "compact layout produces the identical trace"
      test_compact_trace_identical;
    case "compact limits enforced" test_compact_limits;
    slow_case "hosted runs two hyper-periods" test_hosted_multi_cycle;
    case "schedule table rendering" test_schedule_table_rendering;
    case "program structure" test_program_structure;
    case "all targets emit" test_all_targets_emit;
    case "8051 postfix interrupt keyword" test_8051_postfix_interrupt;
    case "embedded idle loop" test_embedded_idle_loop;
    case "target lookup" test_target_find;
    slow_case "hosted fig8 compiles and matches its trace"
      test_hosted_program_runs;
    slow_case "hosted quickstart compiles and matches its trace"
      test_hosted_quickstart_runs;
  ]
