open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Meaning = Ezrt_blocks.Meaning
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Message = Ezrt_spec.Message
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let test_mine_pump_shape () =
  let model = Translate.translate Case_studies.mine_pump in
  check_int "horizon" 30000 model.Translate.horizon;
  check_int "instance total" 782
    (Array.fold_left ( + ) 0 model.Translate.instance_counts);
  (* 10 np tasks x (9 task places + pst) + pproc + pstart + pend
     + the cycle watchdog's pcyc/pcm *)
  check_int "places" 105 (Pnet.place_count model.Translate.net);
  (* 10 x (tph ta tr tg tc tf td tpc) + tstart + tend + tcyc *)
  check_int "transitions" 83 (Pnet.transition_count model.Translate.net);
  check_int "PMC has 375 instances" 375 model.Translate.instance_counts.(0);
  (* arrivals N + (tr tg tc tf tpc) N each + fork + join *)
  check_int "minimum firings" (782 * 6 + 2) (Translate.minimum_firings model);
  check_int "minimum states" (782 * 6 + 3) (Translate.minimum_states model)

let test_meanings_cover_all_transitions () =
  let model = Translate.translate Case_studies.fig8_preemptive in
  (* every transition has a meaning that renders *)
  Array.iteri
    (fun tid meaning ->
      check_bool
        (Printf.sprintf "meaning of %s"
           (Pnet.transition_name model.Translate.net tid))
        true
        (String.length (Meaning.to_string meaning) > 0))
    model.Translate.meanings;
  (* exactly one Start and one End *)
  let count p = Array.to_list model.Translate.meanings |> List.filter p |> List.length in
  check_int "one start" 1 (count (fun m -> m = Meaning.Start));
  check_int "one end" 1 (count (fun m -> m = Meaning.End))

let test_fig3_precedence_structure () =
  let model = Translate.translate Case_studies.fig3_precedence in
  let net = model.Translate.net in
  (* the figure's nodes: per task pst pwr pwg pwc pwf pf pwd pdm pe (9)
     + pwa (N=1: absent) + shared pproc pstart pend pcyc pcm
     + pwp pprec *)
  check_int "places" (9 * 2 + 5 + 2) (Pnet.place_count net);
  check_bool "tprec exists" true
    (Pnet.find_transition_opt net "tprec_T1_T2" <> None);
  (* T2's release is gated by the precedence place *)
  let tr2 = Pnet.find_transition net "tr_T2" in
  let pprec = Pnet.find_place net "pprec_T1_T2" in
  check_bool "tr_T2 consumes pprec" true
    (Array.exists (fun (p, _) -> p = pprec) net.Pnet.pre.(tr2))

let test_fig4_exclusion_structure () =
  let model = Translate.translate Case_studies.fig4_exclusion in
  let net = model.Translate.net in
  let slot = Pnet.find_place net "pexcl_T0_T2" in
  check_int "slot marked" 1 net.Pnet.m0.(slot);
  (* preemptive tasks grab the slot in their te stage *)
  let te0 = Pnet.find_transition net "te_T0" in
  check_bool "te_T0 consumes the slot" true
    (Array.exists (fun (p, _) -> p = slot) net.Pnet.pre.(te0));
  let tf2 = Pnet.find_transition net "tf_T2" in
  check_bool "tf_T2 returns the slot" true
    (Array.exists (fun (p, _) -> p = slot) net.Pnet.post.(tf2));
  (* unit arcs carry the WCET weight *)
  let tr0 = Pnet.find_transition net "tr_T0" in
  ignore tr0;
  let te2 = Pnet.find_transition net "te_T2" in
  let pwu2 = Pnet.find_place net "pwu_T2" in
  check_bool "te_T2 banks 20 units" true
    (Array.exists (fun (p, w) -> p = pwu2 && w = 20) net.Pnet.post.(te2))

let test_message_translation () =
  let tasks =
    [
      Task.make ~name:"prod" ~wcet:2 ~deadline:20 ~period:40 ();
      Task.make ~name:"cons" ~wcet:2 ~deadline:40 ~period:40 ();
    ]
  in
  let messages =
    [ Message.make ~name:"data" ~sender:"prod" ~receiver:"cons" ~comm_time:3 () ]
  in
  let spec = Spec.make ~name:"msg" ~tasks ~messages () in
  let model = Translate.translate spec in
  let net = model.Translate.net in
  check_bool "bus place" true (Pnet.find_place_opt net "pbus_bus0" <> None);
  check_bool "grant transition" true
    (Pnet.find_transition_opt net "tsm_data" <> None);
  check_bool "bus among resources" true
    (List.length model.Translate.resource_places = 2)

let test_final_and_dead_predicates () =
  let model = Translate.translate Case_studies.quickstart in
  let s0 = State.initial model.Translate.net in
  check_bool "initial not final" false (Translate.is_final model s0);
  check_bool "initial not dead" false (Translate.is_dead model s0)

let test_invalid_spec_rejected () =
  let bad = Spec.make ~name:"bad" ~tasks:[] () in
  (match Translate.translate bad with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  let zero_wcet =
    Spec.make ~name:"zero"
      ~tasks:[ Task.make ~name:"z" ~wcet:0 ~deadline:5 ~period:10 () ]
      ()
  in
  match Translate.translate zero_wcet with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for wcet 0"

let test_task_index () =
  let model = Translate.translate Case_studies.mine_pump in
  check_int "PMC first" 0 (Translate.task_index model "PMC");
  check_int "SDL last" 9 (Translate.task_index model "SDL");
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Translate.task_index model "nope"))

let test_required_firings_preemptive () =
  let model = Translate.translate Case_studies.fig4_exclusion in
  let firings = Translate.required_firings model in
  let net = model.Translate.net in
  let expect name n = check_int name n firings.(Pnet.find_transition net name) in
  (* one instance per task in the 250 hyper-period *)
  expect "tr_T0" 1;
  expect "te_T0" 1;
  expect "tg_T0" 10;   (* one per unit *)
  expect "tc_T2" 20;
  expect "td_T0" 0;
  expect "tstart" 1

let prop_translate_total =
  qcheck ~count:60 "translation succeeds on generated specs" arbitrary_spec
    (fun spec ->
      let model = Translate.translate spec in
      Pnet.transition_count model.Translate.net
      = Array.length model.Translate.meanings
      && Translate.minimum_firings model > 0)

let suite =
  [
    case "mine pump model shape" test_mine_pump_shape;
    case "meanings cover every transition" test_meanings_cover_all_transitions;
    case "fig3 precedence structure" test_fig3_precedence_structure;
    case "fig4 exclusion structure" test_fig4_exclusion_structure;
    case "message translation" test_message_translation;
    case "final/dead predicates" test_final_and_dead_predicates;
    case "invalid specs rejected" test_invalid_spec_rejected;
    case "task index" test_task_index;
    case "required firings (preemptive)" test_required_firings_preemptive;
    prop_translate_total;
  ]
