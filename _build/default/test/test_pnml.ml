open Ezrt_tpn
module Pnml = Ezrt_pnml.Pnml
open Test_util

let net_equal (a : Pnet.t) (b : Pnet.t) =
  a.Pnet.net_name = b.Pnet.net_name
  && a.Pnet.place_names = b.Pnet.place_names
  && Array.for_all2
       (fun (x : Pnet.transition) (y : Pnet.transition) ->
         x.Pnet.t_name = y.Pnet.t_name
         && Time_interval.equal x.Pnet.interval y.Pnet.interval
         && x.Pnet.priority = y.Pnet.priority
         && x.Pnet.code = y.Pnet.code)
       a.Pnet.transitions b.Pnet.transitions
  && a.Pnet.pre = b.Pnet.pre
  && a.Pnet.post = b.Pnet.post
  && a.Pnet.m0 = b.Pnet.m0

let roundtrip net =
  match Pnml.of_string (Pnml.to_string net) with
  | Ok net' -> net'
  | Error e -> Alcotest.failf "roundtrip: %s" (Pnml.error_to_string e)

let test_roundtrip_small_nets () =
  check_bool "sequential" true
    (net_equal (sequential_net ()) (roundtrip (sequential_net ())));
  check_bool "conflict" true
    (net_equal (conflict_net ()) (roundtrip (conflict_net ())))

let test_roundtrip_case_studies () =
  List.iter
    (fun (name, spec) ->
      if name <> "mine-pump" then begin
        let net = (Ezrt_blocks.Translate.translate spec).Ezrt_blocks.Translate.net in
        check_bool (name ^ " net roundtrips") true (net_equal net (roundtrip net))
      end)
    Ezrt_spec.Case_studies.all

let test_roundtrip_mine_pump () =
  let net =
    (Ezrt_blocks.Translate.translate Ezrt_spec.Case_studies.mine_pump)
      .Ezrt_blocks.Translate.net
  in
  check_bool "mine pump net roundtrips" true (net_equal net (roundtrip net))

let test_roundtrip_features () =
  (* priorities, code bindings, weights, unbounded intervals *)
  let b = Pnet.Builder.create "features" in
  let p = Pnet.Builder.add_place b ~tokens:2 "a place" in
  let q = Pnet.Builder.add_place b "q" in
  let t0 =
    Pnet.Builder.add_transition b ~priority:5 ~code:"x += 1; /* <&> */" "t0"
      (Time_interval.make_unbounded 3)
  in
  Pnet.Builder.arc_pt b p t0 ~weight:2;
  Pnet.Builder.arc_tp b t0 q ~weight:7;
  let net = Pnet.Builder.build b in
  check_bool "features roundtrip" true (net_equal net (roundtrip net))

let test_document_shape () =
  let doc = Pnml.to_xml (sequential_net ()) in
  check_string "root" "pnml" (Option.get (Ezrt_xml.Doc.tag_of doc));
  let net_elt = Option.get (Ezrt_xml.Doc.find_child doc "net") in
  check_string "net type" Pnml.net_type
    (Ezrt_xml.Doc.attr_exn net_elt "type");
  let page = Option.get (Ezrt_xml.Doc.find_child net_elt "page") in
  check_int "places" 3
    (List.length (Ezrt_xml.Doc.find_children page "place"));
  check_int "transitions" 2
    (List.length (Ezrt_xml.Doc.find_children page "transition"));
  check_int "arcs" 4 (List.length (Ezrt_xml.Doc.find_children page "arc"))

let test_foreign_toolspecific_ignored () =
  let s =
    {|<pnml><net id="n" type="t"><page id="p">
        <place id="p0"><name><text>p0</text></name>
          <initialMarking><text>1</text></initialMarking></place>
        <transition id="t0"><name><text>t0</text></name>
          <toolspecific tool="other" version="1"><weird/></toolspecific>
        </transition>
        <arc id="a0" source="p0" target="t0"/>
      </page></net></pnml>|}
  in
  match Pnml.of_string s with
  | Error e -> Alcotest.failf "parse: %s" (Pnml.error_to_string e)
  | Ok net ->
    (* no ezrealtime extension: unbounded default interval *)
    check_bool "default interval" true
      (Time_interval.equal (Pnet.interval net 0) (Time_interval.make_unbounded 0))

let test_pageless_document () =
  let s =
    {|<pnml><net id="n" type="t">
        <place id="p0"><initialMarking><text>1</text></initialMarking></place>
        <transition id="t0"/>
        <arc id="a0" source="p0" target="t0"/>
      </net></pnml>|}
  in
  match Pnml.of_string s with
  | Error e -> Alcotest.failf "parse: %s" (Pnml.error_to_string e)
  | Ok net ->
    check_int "one place" 1 (Pnet.place_count net);
    check_string "name falls back to id" "p0" (Pnet.place_name net 0)

let expect_error s =
  match Pnml.of_string s with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

let test_errors () =
  expect_error "<notpnml/>";
  expect_error "<pnml/>";
  (* arc endpoints must be a place-transition pair *)
  expect_error
    {|<pnml><net id="n" type="t"><page id="p">
        <place id="p0"/><place id="p1"/>
        <arc id="a0" source="p0" target="p1"/>
      </page></net></pnml>|};
  (* missing arc target *)
  expect_error
    {|<pnml><net id="n" type="t"><page id="p">
        <place id="p0"/><transition id="t0"/>
        <arc id="a0" source="p0"/>
      </page></net></pnml>|};
  (* net that violates builder invariants: transition without inputs *)
  expect_error
    {|<pnml><net id="n" type="t"><page id="p">
        <transition id="t0"/>
      </page></net></pnml>|}

let test_file_io () =
  let path = Filename.temp_file "ezrt" ".pnml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let net = conflict_net () in
      Pnml.save_file path net;
      match Pnml.load_file path with
      | Ok net' -> check_bool "file roundtrip" true (net_equal net net')
      | Error e -> Alcotest.failf "load: %s" (Pnml.error_to_string e))

let prop_translated_roundtrip =
  qcheck ~count:40 "translated nets roundtrip" arbitrary_spec (fun spec ->
      let net = (Ezrt_blocks.Translate.translate spec).Ezrt_blocks.Translate.net in
      net_equal net (roundtrip net))

let suite =
  [
    case "small nets roundtrip" test_roundtrip_small_nets;
    case "case-study nets roundtrip" test_roundtrip_case_studies;
    slow_case "mine pump net roundtrips" test_roundtrip_mine_pump;
    case "priorities, code, weights, unbounded" test_roundtrip_features;
    case "ISO document shape" test_document_shape;
    case "foreign toolspecific ignored" test_foreign_toolspecific_ignored;
    case "pageless documents tolerated" test_pageless_document;
    case "malformed documents rejected" test_errors;
    case "file save/load" test_file_io;
    prop_translated_roundtrip;
  ]
