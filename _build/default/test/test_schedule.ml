open Ezrt_tpn
module Schedule = Ezrt_sched.Schedule
open Test_util

let test_of_actions_accumulates () =
  let s = Schedule.of_actions [ (0, 2); (1, 0); (0, 3) ] in
  (match s.Schedule.entries with
  | [ e0; e1; e2 ] ->
    check_int "t0 at 2" 2 e0.Schedule.time;
    check_int "t1 at 2" 2 e1.Schedule.time;
    check_int "t0 again at 5" 5 e2.Schedule.time;
    check_int "delay kept" 3 e2.Schedule.delay
  | _ -> Alcotest.fail "expected three entries");
  check_int "length" 3 (Schedule.length s);
  check_int "makespan" 5 (Schedule.makespan s)

let test_empty () =
  let s = Schedule.of_actions [] in
  check_int "length" 0 (Schedule.length s);
  check_int "makespan" 0 (Schedule.makespan s)

let test_replay_valid () =
  let net = sequential_net () in
  let s = Schedule.of_actions [ (0, 2); (1, 0) ] in
  let final = Schedule.replay net s in
  check_int "token reached the sink" 1 (State.tokens final 2)

let test_replay_rejects_illegal () =
  let net = sequential_net () in
  (* t1 before t0 is not enabled *)
  let bad = Schedule.of_actions [ (1, 0) ] in
  (match Schedule.replay net bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection");
  (* firing time outside the static interval *)
  let late = Schedule.of_actions [ (0, 9) ] in
  match Schedule.replay net late with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of late firing"

let suite =
  [
    case "of_actions accumulates time" test_of_actions_accumulates;
    case "empty schedule" test_empty;
    case "replay follows the semantics" test_replay_valid;
    case "replay rejects illegal schedules" test_replay_rejects_illegal;
  ]
