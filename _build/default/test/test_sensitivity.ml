module Sensitivity = Ezrt_sched.Sensitivity
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let analyze_exn ?limit_factor spec =
  match Sensitivity.analyze ?limit_factor spec with
  | Ok t -> t
  | Error msg -> Alcotest.failf "sensitivity: %s" msg

let test_single_task_margin () =
  (* one task, c=2, d=10, r=0: feasible up to c=10 exactly *)
  let spec =
    Spec.make ~name:"solo"
      ~tasks:[ Task.make ~name:"a" ~wcet:2 ~deadline:10 ~period:10 () ]
      ()
  in
  let t = analyze_exn spec in
  let row = List.hd t.Sensitivity.rows in
  check_int "max wcet is the window" 10 row.Sensitivity.max_wcet;
  check_int "margin" 8 row.Sensitivity.margin

let test_contention_shrinks_margin () =
  let spec =
    Spec.make ~name:"pair"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:2 ~deadline:10 ~period:10 ();
          Task.make ~name:"b" ~wcet:3 ~deadline:10 ~period:10 ();
        ]
      ()
  in
  let t = analyze_exn spec in
  let margin name =
    (List.find (fun r -> r.Sensitivity.task = name) t.Sensitivity.rows)
      .Sensitivity.max_wcet
  in
  (* both must fit in the same 10-unit window: a can grow to 10-3=7,
     b to 10-2=8 *)
  check_int "a bounded by b" 7 (margin "a");
  check_int "b bounded by a" 8 (margin "b")

let test_quickstart_chain () =
  let t = analyze_exn Case_studies.quickstart in
  (* precedence chain sample -> filter -> actuate with deadlines
     10/16/20 constrains every margin *)
  List.iter
    (fun row ->
      check_bool (row.Sensitivity.task ^ " has nonnegative margin") true
        (row.Sensitivity.margin >= 0);
      check_bool (row.Sensitivity.task ^ " stays below its window") true
        (row.Sensitivity.max_wcet <= 20))
    t.Sensitivity.rows;
  check_bool "binary search was frugal" true (t.Sensitivity.syntheses < 60)

let test_infeasible_rejected () =
  let spec =
    Spec.make ~name:"tight"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:5 ~deadline:5 ~period:10 ();
          Task.make ~name:"b" ~wcet:5 ~deadline:6 ~period:10 ();
        ]
      ()
  in
  check_bool "not schedulable as given" true
    (Result.is_error (Sensitivity.analyze spec))

let test_invalid_rejected () =
  check_bool "invalid spec" true
    (Result.is_error (Sensitivity.analyze (Spec.make ~name:"e" ~tasks:[] ())))

let test_limit_factor () =
  let spec =
    Spec.make ~name:"solo"
      ~tasks:[ Task.make ~name:"a" ~wcet:1 ~deadline:100 ~period:100 () ]
      ()
  in
  let t = analyze_exn ~limit_factor:4 spec in
  check_int "probe capped at limit_factor * wcet" 4
    (List.hd t.Sensitivity.rows).Sensitivity.max_wcet

let test_pp () =
  let t = analyze_exn Case_studies.quickstart in
  check_bool "renders" true
    (String.length (Format.asprintf "%a" Sensitivity.pp t) > 50)

let test_deadline_margins_solo () =
  (* a lone task's minimum deadline is its WCET *)
  let spec =
    Spec.make ~name:"solo"
      ~tasks:[ Task.make ~name:"a" ~wcet:3 ~deadline:12 ~period:12 () ]
      ()
  in
  match Sensitivity.deadline_margins spec with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    let row = List.hd t.Sensitivity.d_rows in
    check_int "min deadline = wcet" 3 row.Sensitivity.min_deadline;
    check_int "margin" 9 row.Sensitivity.d_margin

let test_deadline_margins_contended () =
  (* two same-period tasks: one must wait for the other, so one of the
     minimum deadlines includes the other's computation *)
  let spec =
    Spec.make ~name:"pair"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:2 ~deadline:10 ~period:10 ();
          Task.make ~name:"b" ~wcet:3 ~deadline:10 ~period:10 ();
        ]
      ()
  in
  match Sensitivity.deadline_margins spec with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    let min_of name =
      (List.find (fun r -> r.Sensitivity.d_task = name) t.Sensitivity.d_rows)
        .Sensitivity.min_deadline
    in
    (* each task alone can go first: its own wcet is achievable *)
    check_int "a can go first" 2 (min_of "a");
    check_int "b can go first" 3 (min_of "b")

let test_deadline_margins_chain () =
  (* the precedence chain forces actuate's response to include the
     whole pipeline: sample(2) + filter(4) + actuate(3) = 9 *)
  match Sensitivity.deadline_margins Case_studies.quickstart with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    let min_of name =
      (List.find (fun r -> r.Sensitivity.d_task = name) t.Sensitivity.d_rows)
        .Sensitivity.min_deadline
    in
    check_int "sample" 2 (min_of "sample");
    check_int "filter (after sample)" 6 (min_of "filter");
    check_int "actuate (whole chain)" 9 (min_of "actuate")

let test_deadline_margins_rejects () =
  check_bool "invalid rejected" true
    (Result.is_error
       (Sensitivity.deadline_margins (Spec.make ~name:"e" ~tasks:[] ())))

let test_pp_deadlines () =
  match Sensitivity.deadline_margins Case_studies.quickstart with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    check_bool "renders" true
      (String.length (Format.asprintf "%a" Sensitivity.pp_deadlines t) > 40)

let suite =
  [
    case "deadline margins: solo task" test_deadline_margins_solo;
    case "deadline margins: contention" test_deadline_margins_contended;
    case "deadline margins: precedence chain" test_deadline_margins_chain;
    case "deadline margins: invalid rejected" test_deadline_margins_rejects;
    case "deadline report renders" test_pp_deadlines;
    case "single-task margin" test_single_task_margin;
    case "contention shrinks margins" test_contention_shrinks_margin;
    case "quickstart precedence chain" test_quickstart_chain;
    case "unschedulable input rejected" test_infeasible_rejected;
    case "invalid input rejected" test_invalid_rejected;
    case "limit factor caps probing" test_limit_factor;
    case "report renders" test_pp;
  ]
