open Ezrt_tpn
open Test_util

let test_make_valid () =
  let itv = Time_interval.make 3 7 in
  check_int "eft" 3 (Time_interval.eft itv);
  check_bool "lft" true (Time_interval.lft itv = Time_interval.Finite 7)

let test_make_rejects_negative () =
  Alcotest.check_raises "negative eft" (Invalid_argument
    "Time_interval.make: negative EFT") (fun () ->
      ignore (Time_interval.make (-1) 3))

let test_make_rejects_inverted () =
  Alcotest.check_raises "lft < eft" (Invalid_argument
    "Time_interval.make: LFT < EFT") (fun () ->
      ignore (Time_interval.make 5 3))

let test_point () =
  let itv = Time_interval.point 4 in
  check_bool "is point" true (Time_interval.is_point itv);
  check_bool "contains 4" true (Time_interval.contains itv 4);
  check_bool "not 5" false (Time_interval.contains itv 5);
  check_bool "not 3" false (Time_interval.contains itv 3)

let test_zero () =
  check_bool "zero is [0,0]" true
    (Time_interval.equal Time_interval.zero (Time_interval.point 0))

let test_unbounded () =
  let itv = Time_interval.make_unbounded 2 in
  check_bool "not point" false (Time_interval.is_point itv);
  check_bool "contains huge" true (Time_interval.contains itv 1_000_000);
  check_bool "not below eft" false (Time_interval.contains itv 1);
  check_string "render" "[2, inf]" (Time_interval.to_string itv)

let test_to_string () =
  check_string "finite" "[0, 130]"
    (Time_interval.to_string (Time_interval.make 0 130))

let test_bound_ops () =
  let open Time_interval in
  check_bool "min finite" true (bound_min (Finite 3) (Finite 5) = Finite 3);
  check_bool "min inf" true (bound_min Infinity (Finite 5) = Finite 5);
  check_bool "le inf" true (bound_le (Finite 1000) Infinity);
  check_bool "inf not le" false (bound_le Infinity (Finite 1000));
  check_bool "inf le inf" true (bound_le Infinity Infinity);
  check_bool "add" true (bound_add (Finite 3) 4 = Finite 7);
  check_bool "add inf" true (bound_add Infinity 4 = Infinity);
  check_bool "sub" true (bound_sub (Finite 3) 4 = Finite (-1));
  check_bool "sub inf" true (bound_sub Infinity 4 = Infinity)

let test_equal () =
  let open Time_interval in
  check_bool "same" true (equal (make 1 2) (make 1 2));
  check_bool "diff lft" false (equal (make 1 2) (make 1 3));
  check_bool "finite vs inf" false (equal (make 1 2) (make_unbounded 1));
  check_bool "inf vs inf" true (equal (make_unbounded 1) (make_unbounded 1))

let prop_make_contains_bounds =
  qcheck "contains both bounds" QCheck.(pair (int_bound 50) (int_bound 50))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let itv = Time_interval.make lo hi in
      Time_interval.contains itv lo && Time_interval.contains itv hi)

let prop_bound_min_commutative =
  let bound_gen =
    QCheck.map
      (fun n ->
        if n = 0 then Time_interval.Infinity else Time_interval.Finite n)
      QCheck.(int_bound 20)
  in
  qcheck "bound_min commutative" (QCheck.pair bound_gen bound_gen)
    (fun (a, b) -> Time_interval.bound_min a b = Time_interval.bound_min b a)

let prop_bound_min_le =
  let bound_gen =
    QCheck.map
      (fun n ->
        if n = 0 then Time_interval.Infinity else Time_interval.Finite n)
      QCheck.(int_bound 20)
  in
  qcheck "bound_min is a lower bound" (QCheck.pair bound_gen bound_gen)
    (fun (a, b) ->
      let m = Time_interval.bound_min a b in
      Time_interval.bound_le m a && Time_interval.bound_le m b)

let suite =
  [
    case "make valid" test_make_valid;
    case "make rejects negative" test_make_rejects_negative;
    case "make rejects inverted" test_make_rejects_inverted;
    case "point" test_point;
    case "zero" test_zero;
    case "unbounded" test_unbounded;
    case "to_string" test_to_string;
    case "bound ops" test_bound_ops;
    case "equal" test_equal;
    prop_make_contains_bounds;
    prop_bound_min_commutative;
    prop_bound_min_le;
  ]
