open Ezrt_tpn
module Compose = Ezrt_blocks.Compose
module Blocks = Ezrt_blocks.Blocks
open Test_util

let test_rename_and_prefix () =
  let net = Compose.prefix "T1_" (sequential_net ()) in
  check_bool "place renamed" true (Pnet.find_place_opt net "T1_p0" <> None);
  check_bool "transition renamed" true
    (Pnet.find_transition_opt net "T1_t0" <> None);
  check_bool "old names gone" true (Pnet.find_place_opt net "p0" = None);
  check_int "structure preserved" (Pnet.arc_count (sequential_net ()))
    (Pnet.arc_count net);
  check_int "marking preserved" 1 net.Pnet.m0.(Pnet.find_place net "T1_p0")

let test_rename_collision_rejected () =
  match
    Compose.rename (sequential_net ())
      ~places:(fun _ -> "same")
      ~transitions:Fun.id
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected a collision error"

let test_union_fuses_interface_places () =
  (* two copies of the sequential net sharing their sink/source:
     a: p0 -> t0 -> p1 -> t1 -> p2 (renamed A_*, except the shared "mid")
     b: mid -> u0 -> q1 *)
  let a =
    Compose.rename (sequential_net ())
      ~places:(function "p2" -> "mid" | n -> "A_" ^ n)
      ~transitions:(fun n -> "A_" ^ n)
  in
  let b =
    let builder = Pnet.Builder.create "b" in
    let mid = Pnet.Builder.add_place builder "mid" in
    let q1 = Pnet.Builder.add_place builder "q1" in
    let u0 = Pnet.Builder.add_transition builder "u0" Time_interval.zero in
    Pnet.Builder.arc_pt builder mid u0;
    Pnet.Builder.arc_tp builder u0 q1;
    Pnet.Builder.build builder
  in
  let merged = Compose.union ~name:"chain" a b in
  check_int "four places (mid fused)" 4 (Pnet.place_count merged);
  check_int "three transitions" 3 (Pnet.transition_count merged);
  (* the glued net runs end to end *)
  let stats = Tlts.explore merged in
  check_int "four states" 4 stats.Tlts.states;
  check_int "one deadlock (token in q1)" 1 stats.Tlts.deadlocks

let test_union_adds_markings () =
  let a =
    let b = Pnet.Builder.create "a" in
    let p = Pnet.Builder.add_place b ~tokens:1 "shared" in
    let t = Pnet.Builder.add_transition b "ta" Time_interval.zero in
    Pnet.Builder.arc_pt b p t;
    Pnet.Builder.build b
  in
  let b =
    let builder = Pnet.Builder.create "b" in
    let p = Pnet.Builder.add_place builder ~tokens:2 "shared" in
    let t = Pnet.Builder.add_transition builder "tb" Time_interval.zero in
    Pnet.Builder.arc_pt builder p t;
    Pnet.Builder.build builder
  in
  let merged = Compose.union a b in
  check_int "markings add on fusion" 3
    merged.Pnet.m0.(Pnet.find_place merged "shared")

let test_union_rejects_transition_clash () =
  match Compose.union (sequential_net ()) (sequential_net ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "same-named transitions must not merge"

let test_add_arc_both_directions () =
  let net = sequential_net () in
  let with_pt = Compose.add_arc net ~from:"p2" ~into:"t0" () in
  check_bool "place -> transition" true
    (Array.exists
       (fun (p, _) -> p = Pnet.find_place with_pt "p2")
       with_pt.Pnet.pre.(Pnet.find_transition with_pt "t0"));
  let with_tp = Compose.add_arc net ~from:"t1" ~into:"p0" ~weight:2 () in
  check_bool "transition -> place with weight" true
    (Array.exists
       (fun (p, w) -> p = Pnet.find_place with_tp "p0" && w = 2)
       with_tp.Pnet.post.(Pnet.find_transition with_tp "t1"));
  match Compose.add_arc net ~from:"nope" ~into:"t0" () with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown node must raise"

let test_marked () =
  let net = Compose.marked (sequential_net ()) "p1" 5 in
  check_int "override" 5 net.Pnet.m0.(Pnet.find_place net "p1")

(* The paper's compositional story end to end: assemble one
   non-preemptive task model from loose blocks by name fusion, and
   check that it behaves like a task (arrival, release, run, finish). *)
let test_manual_task_assembly () =
  let structure =
    let b = Pnet.Builder.create "structure" in
    let pproc = Blocks.processor_block b "pproc" in
    let st =
      Blocks.non_preemptive_structure b ~task:"T" ~release:0 ~wcet:2
        ~deadline:8 ~processor:pproc ~exclusions:[]
    in
    ignore st;
    Pnet.Builder.build b
  in
  let deadline =
    let b = Pnet.Builder.create "deadline" in
    (* interface places: pf_T (from the structure), pwd_T (to the
       arrival) *)
    let pf = Pnet.Builder.add_place b "pf_T" in
    let dl = Blocks.deadline_block b ~task:"T" ~deadline:8 ~finished:pf in
    ignore dl;
    Pnet.Builder.build b
  in
  let arrival =
    let b = Pnet.Builder.create "arrival" in
    let pst = Pnet.Builder.add_place b ~tokens:1 "pst_T" in
    let pwr = Pnet.Builder.add_place b "pwr_T" in
    let pwd = Pnet.Builder.add_place b "pwd_T" in
    let arr =
      Blocks.arrival_block b ~task:"T" ~phase:0 ~period:10 ~instances:1
        ~start:pst ~release:pwr ~watch:pwd
    in
    ignore arr;
    Pnet.Builder.build b
  in
  (* fusion by names: pwr_T, pwd_T, pf_T are the interfaces *)
  let model = Compose.union_all ~name:"manual-task" [ structure; deadline; arrival ] in
  check_bool "interfaces fused" true
    (Pnet.place_count model
     = Pnet.place_count structure + Pnet.place_count deadline
       + Pnet.place_count arrival - 3);
  (* the assembled net runs to quiescence with the deadline met *)
  let stats = Tlts.explore model in
  check_int "no deadline miss branch taken" 0
    (let report = Analysis.reachability_report model in
     report.Analysis.per_place_bound.(Pnet.find_place model "pdm_T"));
  check_bool "finite" false stats.Tlts.truncated;
  (* pe_T ends with the one instance accounted *)
  let report = Analysis.reachability_report model in
  check_int "instance completed somewhere" 1
    report.Analysis.per_place_bound.(Pnet.find_place model "pe_T")

let suite =
  [
    case "rename and prefix" test_rename_and_prefix;
    case "rename collisions rejected" test_rename_collision_rejected;
    case "union fuses interface places" test_union_fuses_interface_places;
    case "union adds markings on fusion" test_union_adds_markings;
    case "union rejects transition clashes" test_union_rejects_transition_clash;
    case "add_arc in both directions" test_add_arc_both_directions;
    case "marked override" test_marked;
    case "manual task assembly (paper-style composition)"
      test_manual_task_assembly;
  ]
