open Ezrt_tpn
open Test_util

let test_initial () =
  let net = sequential_net () in
  let s = State.initial net in
  check_int "p0 marked" 1 (State.tokens s 0);
  check_bool "t0 enabled" true (State.is_enabled s 0);
  check_bool "t1 disabled" false (State.is_enabled s 1);
  check_bool "enabled ids" true (State.enabled_ids s = [ 0 ])

let test_dlb_dub () =
  let net = sequential_net () in
  let s = State.initial net in
  (* t0 has interval [2,5] and clock 0 *)
  check_int "dlb" 2 (State.dlb net s 0);
  check_bool "dub" true (State.dub net s 0 = Time_interval.Finite 5);
  check_bool "min dub" true (State.min_dub net s = Time_interval.Finite 5)

let test_disabled_raises () =
  let net = sequential_net () in
  let s = State.initial net in
  Alcotest.check_raises "dlb of disabled"
    (Invalid_argument "State.dlb: transition 1 is not enabled") (fun () ->
      ignore (State.dlb net s 1))

let test_fire_moves_tokens_and_clocks () =
  let net = sequential_net () in
  let s = State.initial net in
  let s1 = State.fire net s 0 3 in
  check_int "p0 empty" 0 (State.tokens s1 0);
  check_int "p1 marked" 1 (State.tokens s1 1);
  check_bool "t0 disabled" false (State.is_enabled s1 0);
  check_bool "t1 newly enabled, clock 0" true (s1.State.clocks.(1) = 0);
  let s2 = State.fire net s1 1 0 in
  check_int "p2 marked" 1 (State.tokens s2 2);
  check_bool "deadlock" true (State.enabled_ids s2 = [])

let test_fire_outside_domain () =
  let net = sequential_net () in
  let s = State.initial net in
  Alcotest.check_raises "too early"
    (Invalid_argument
       "State.fire: time 1 outside firing domain [2, 5] of t0") (fun () ->
      ignore (State.fire net s 0 1));
  Alcotest.check_raises "too late"
    (Invalid_argument
       "State.fire: time 6 outside firing domain [2, 5] of t0") (fun () ->
      ignore (State.fire net s 0 6))

(* Def 3.1 clock rule: a transition enabled before and after the firing
   advances by q; a newly enabled one (or the fired one, if still
   enabled) resets to 0. *)
let parallel_net () =
  let b = Pnet.Builder.create "parallel" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let p1 = Pnet.Builder.add_place b ~tokens:1 "p1" in
  let p2 = Pnet.Builder.add_place b "p2" in
  let t0 = Pnet.Builder.add_transition b "t0" (Time_interval.make 1 4) in
  let t1 = Pnet.Builder.add_transition b "t1" (Time_interval.make 0 9) in
  Pnet.Builder.arc_pt b p0 t0;
  Pnet.Builder.arc_tp b t0 p2;
  Pnet.Builder.arc_pt b p1 t1;
  Pnet.Builder.arc_tp b t1 p2;
  Pnet.Builder.build b

let test_clock_advance () =
  let net = parallel_net () in
  let s = State.initial net in
  let s1 = State.fire net s 0 2 in
  check_int "t1 clock advanced" 2 s1.State.clocks.(1);
  check_bool "t0 disabled" false (State.is_enabled s1 0)

let test_self_loop_reset () =
  (* t consumes and reproduces its own token: it stays enabled and its
     clock must reset (the fired transition rule). *)
  let b = Pnet.Builder.create "loop" in
  let p = Pnet.Builder.add_place b ~tokens:2 "p" in
  let t = Pnet.Builder.add_transition b "t" (Time_interval.make 3 3) in
  Pnet.Builder.arc_pt b p t;
  Pnet.Builder.arc_tp b t p;
  let net = Pnet.Builder.build b in
  let s = State.initial net in
  let s1 = State.fire net s t 3 in
  check_int "clock reset after self firing" 0 s1.State.clocks.(t);
  check_int "tokens conserved" 2 (State.tokens s1 p)

let test_candidates_and_fireable () =
  let net = conflict_net () in
  let s = State.initial net in
  (* t0 in [1,3], t1 in [2,7]: min DUB = 3, both DLBs (1, 2) are <= 3 *)
  check_bool "both candidates" true
    (List.sort compare (State.candidates net s) = [ 0; 1 ]);
  check_bool "equal priorities: both fireable" true
    (List.sort compare (State.fireable net s) = [ 0; 1 ])

let test_priority_filters_fireable () =
  let b = Pnet.Builder.create "prio" in
  let p = Pnet.Builder.add_place b ~tokens:1 "p" in
  let t0 = Pnet.Builder.add_transition b ~priority:1 "t0" Time_interval.zero in
  let t1 = Pnet.Builder.add_transition b ~priority:2 "t1" Time_interval.zero in
  Pnet.Builder.arc_pt b p t0;
  Pnet.Builder.arc_pt b p t1;
  let net = Pnet.Builder.build b in
  let s = State.initial net in
  check_bool "both are candidates" true
    (List.sort compare (State.candidates net s) = [ 0; 1 ]);
  check_bool "only best priority fireable" true (State.fireable net s = [ t0 ]);
  ignore t1

let test_urgent_excludes_slow () =
  (* t0 must fire at 0 (DUB 0); t1 has DLB 2 > 0 so it is not a
     candidate. *)
  let b = Pnet.Builder.create "urgent" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let p1 = Pnet.Builder.add_place b ~tokens:1 "p1" in
  let t0 = Pnet.Builder.add_transition b "t0" Time_interval.zero in
  let t1 = Pnet.Builder.add_transition b "t1" (Time_interval.make 2 5) in
  Pnet.Builder.arc_pt b p0 t0;
  Pnet.Builder.arc_tp b t0 p0;
  Pnet.Builder.arc_pt b p1 t1;
  Pnet.Builder.arc_tp b t1 p1;
  let net = Pnet.Builder.build b in
  let s = State.initial net in
  check_bool "only urgent fireable" true (State.fireable net s = [ t0 ]);
  ignore t1

let test_firing_domain () =
  let net = conflict_net () in
  let s = State.initial net in
  let lo, hi = State.firing_domain net s 1 in
  check_int "lo is DLB" 2 lo;
  check_bool "hi is min DUB" true (hi = Time_interval.Finite 3)

let test_equal_hash () =
  let net = sequential_net () in
  let a = State.initial net in
  let b = State.initial net in
  check_bool "equal" true (State.equal a b);
  check_int "hash equal" (State.hash a) (State.hash b);
  let a' = State.fire net a 0 2 in
  check_bool "not equal" false (State.equal a a')

let test_weighted_enabling () =
  let b = Pnet.Builder.create "weighted" in
  let p = Pnet.Builder.add_place b ~tokens:1 "p" in
  let q = Pnet.Builder.add_place b "q" in
  let t = Pnet.Builder.add_transition b "t" Time_interval.zero in
  Pnet.Builder.arc_pt b p t ~weight:2;
  Pnet.Builder.arc_tp b t q;
  let net = Pnet.Builder.build b in
  let s = State.initial net in
  check_bool "weight 2 not enabled by 1 token" false (State.is_enabled s t)

(* Invariant: along any earliest-firing run of a random ring net,
   markings stay non-negative, exactly one token circulates, and every
   enabled clock respects its LFT. *)
let prop_ring_invariants =
  qcheck ~count:100 "ring-net firing invariants"
    QCheck.(pair (int_range 2 6) (int_range 0 100))
    (fun (n, seed) ->
      let net = ring_net n seed in
      let rec walk s steps =
        if steps = 0 then true
        else
          let total = Array.fold_left ( + ) 0 s.State.marking in
          let nonneg = Array.for_all (fun x -> x >= 0) s.State.marking in
          let clocks_ok =
            List.for_all
              (fun tid ->
                match State.dub net s tid with
                | Time_interval.Finite d -> d >= 0
                | Time_interval.Infinity -> true)
              (State.enabled_ids s)
          in
          total = 1 && nonneg && clocks_ok
          &&
          match State.fireable net s with
          | [] -> false (* a ring never deadlocks *)
          | tid :: _ -> walk (State.fire net s tid (State.dlb net s tid)) (steps - 1)
      in
      walk (State.initial net) 25)

let suite =
  [
    case "initial state" test_initial;
    case "dlb and dub" test_dlb_dub;
    case "disabled transitions raise" test_disabled_raises;
    case "fire moves tokens and clocks" test_fire_moves_tokens_and_clocks;
    case "fire outside domain rejected" test_fire_outside_domain;
    case "clocks advance for persistent transitions" test_clock_advance;
    case "fired transition's clock resets" test_self_loop_reset;
    case "candidates and fireable" test_candidates_and_fireable;
    case "priority filter" test_priority_filters_fireable;
    case "urgent transition excludes slow ones" test_urgent_excludes_slow;
    case "firing domain" test_firing_domain;
    case "equality and hashing" test_equal_hash;
    case "weighted enabling" test_weighted_enabling;
    prop_ring_invariants;
  ]
