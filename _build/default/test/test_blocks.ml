open Ezrt_tpn
module Blocks = Ezrt_blocks.Blocks
module Relations = Ezrt_blocks.Relations
open Test_util

let fresh () = Pnet.Builder.create "blocks"

let test_processor_block () =
  let b = fresh () in
  let pproc = Blocks.processor_block b "pproc" in
  let p2 = Pnet.Builder.add_place b "sink" in
  let t = Pnet.Builder.add_transition b "t" Time_interval.zero in
  Pnet.Builder.arc_pt b pproc t;
  Pnet.Builder.arc_tp b t p2;
  let net = Pnet.Builder.build b in
  check_int "one initial token" 1 net.Pnet.m0.(pproc)

let test_fork_block () =
  let b = fresh () in
  let s1 = Pnet.Builder.add_place b "s1" in
  let s2 = Pnet.Builder.add_place b "s2" in
  let pstart, tstart = Blocks.fork_block b ~starts:[ s1; s2 ] in
  let net = Pnet.Builder.build b in
  check_int "pstart marked" 1 net.Pnet.m0.(pstart);
  check_bool "immediate" true
    (Time_interval.equal (Pnet.interval net tstart) Time_interval.zero);
  check_int "two outputs" 2 (Array.length net.Pnet.post.(tstart));
  (* firing the fork starts every task *)
  let s = State.fire net (State.initial net) tstart 0 in
  check_int "s1 marked" 1 (State.tokens s s1);
  check_int "s2 marked" 1 (State.tokens s s2)

let test_join_block () =
  let b = fresh () in
  let e1 = Pnet.Builder.add_place b ~tokens:2 "e1" in
  let e2 = Pnet.Builder.add_place b ~tokens:3 "e2" in
  let pend, tend = Blocks.join_block b ~sources:[ (e1, 2); (e2, 3) ] in
  let net = Pnet.Builder.build b in
  let s0 = State.initial net in
  check_bool "enabled when all instances done" true (State.is_enabled s0 tend);
  let s1 = State.fire net s0 tend 0 in
  check_int "final marking reached" 1 (State.tokens s1 pend);
  check_int "e1 drained" 0 (State.tokens s1 e1)

let test_arrival_block_multi () =
  let b = fresh () in
  let start = Pnet.Builder.add_place b ~tokens:1 "start" in
  let release = Pnet.Builder.add_place b "release" in
  let watch = Pnet.Builder.add_place b "watch" in
  let arr =
    Blocks.arrival_block b ~task:"T" ~phase:2 ~period:10 ~instances:3 ~start
      ~release ~watch
  in
  let net = Pnet.Builder.build b in
  let ta = Option.get arr.Blocks.ta in
  let pwa = Option.get arr.Blocks.pwa in
  (* first arrival at the phase *)
  let s1 = State.fire net (State.initial net) arr.Blocks.tph 2 in
  check_int "release armed" 1 (State.tokens s1 release);
  check_int "watch armed" 1 (State.tokens s1 watch);
  check_int "two banked arrivals" 2 (State.tokens s1 pwa);
  (* second arrival exactly one period later *)
  check_int "ta DLB is the period" 10 (State.dlb net s1 ta);
  let s2 = State.fire net s1 ta 10 in
  check_int "release again" 2 (State.tokens s2 release);
  check_int "one banked left" 1 (State.tokens s2 pwa);
  (* the recycled ta clock restarts: next arrival one period later *)
  check_int "ta clock reset" 10 (State.dlb net s2 ta)

let test_arrival_block_single_instance () =
  let b = fresh () in
  let start = Pnet.Builder.add_place b ~tokens:1 "start" in
  let release = Pnet.Builder.add_place b "release" in
  let watch = Pnet.Builder.add_place b "watch" in
  let arr =
    Blocks.arrival_block b ~task:"T" ~phase:0 ~period:10 ~instances:1 ~start
      ~release ~watch
  in
  check_bool "no arrival pool" true (arr.Blocks.pwa = None);
  check_bool "no ta" true (arr.Blocks.ta = None)

let test_arrival_rejects_zero_instances () =
  let b = fresh () in
  let start = Pnet.Builder.add_place b ~tokens:1 "start" in
  Alcotest.check_raises "instances < 1"
    (Invalid_argument "arrival_block: instances < 1") (fun () ->
      ignore
        (Blocks.arrival_block b ~task:"T" ~phase:0 ~period:10 ~instances:0
           ~start ~release:start ~watch:start))

let test_deadline_block_miss_and_ok () =
  let b = fresh () in
  let finished = Pnet.Builder.add_place b "finished" in
  let watch_feeder = Pnet.Builder.add_place b ~tokens:1 "feeder" in
  let dl = Blocks.deadline_block b ~task:"T" ~deadline:5 ~finished in
  let arm = Pnet.Builder.add_transition b "arm" Time_interval.zero in
  Pnet.Builder.arc_pt b watch_feeder arm;
  Pnet.Builder.arc_tp b arm dl.Blocks.pwd;
  let net = Pnet.Builder.build b in
  let s = State.fire net (State.initial net) arm 0 in
  (* without a finish token, td is forced at exactly d *)
  check_int "td DLB" 5 (State.dlb net s dl.Blocks.td);
  check_bool "tpc disabled" false (State.is_enabled s dl.Blocks.tpc);
  let missed = State.fire net s dl.Blocks.td 5 in
  check_int "deadline-missed marked" 1 (State.tokens missed dl.Blocks.pdm)

let test_deadline_ok_outranks_miss () =
  let b = fresh () in
  let finished = Pnet.Builder.add_place b ~tokens:1 "finished" in
  let watch_feeder = Pnet.Builder.add_place b ~tokens:1 "feeder" in
  let dl = Blocks.deadline_block b ~task:"T" ~deadline:0 ~finished in
  let arm = Pnet.Builder.add_transition b "arm" Time_interval.zero in
  Pnet.Builder.arc_pt b watch_feeder arm;
  Pnet.Builder.arc_tp b arm dl.Blocks.pwd;
  let net = Pnet.Builder.build b in
  let s = State.fire net (State.initial net) arm 0 in
  (* both td (deadline 0) and tpc are candidates; tpc's priority wins *)
  check_bool "only tpc fireable" true (State.fireable net s = [ dl.Blocks.tpc ]);
  let s' = State.fire net s dl.Blocks.tpc 0 in
  check_int "instance accounted" 1 (State.tokens s' dl.Blocks.pe);
  check_bool "td disarmed" false (State.is_enabled s' dl.Blocks.td)

let np_fixture exclusions =
  let b = fresh () in
  let pproc = Blocks.processor_block b "pproc" in
  let excl = List.map (fun n -> Relations.exclusion_place b ~name:n) exclusions in
  let st =
    Blocks.non_preemptive_structure b ~task:"T" ~release:1 ~wcet:3 ~deadline:10
      ~processor:pproc ~exclusions:excl
  in
  (b, pproc, excl, st)

let suite_np_structure () =
  let b, pproc, _, st = np_fixture [] in
  Pnet.Builder.add_tokens b st.Blocks.pwr 1;
  let net = Pnet.Builder.build b in
  let s0 = State.initial net in
  (* release = 1: the wait stage anchors the offset at the arrival *)
  let tw = Option.get st.Blocks.tw in
  check_bool "wait is the point [r, r]" true
    (Time_interval.equal (Pnet.interval net tw) (Time_interval.point 1));
  check_bool "gated release carries the rest of the window" true
    (Time_interval.equal (Pnet.interval net st.Blocks.tr)
       (Time_interval.make 0 6));
  let s0 = State.fire net s0 tw 1 in
  check_int "release window lower" 0 (State.dlb net s0 st.Blocks.tr);
  check_bool "release window upper = d - c - r" true
    (State.dub net s0 st.Blocks.tr = Time_interval.Finite 6);
  let s1 = State.fire net s0 st.Blocks.tr 0 in
  check_bool "grab is immediate and fireable" true
    (List.mem st.Blocks.tg (State.fireable net s1));
  let s2 = State.fire net s1 st.Blocks.tg 0 in
  check_int "processor taken" 0 (State.tokens s2 pproc);
  check_int "computation takes exactly c" 3 (State.dlb net s2 st.Blocks.tc);
  let s3 = State.fire net s2 st.Blocks.tc 3 in
  let s4 = State.fire net s3 st.Blocks.tf 0 in
  check_int "processor returned" 1 (State.tokens s4 pproc);
  check_int "finished" 1 (State.tokens s4 st.Blocks.pf)

let test_np_wcet_rejected () =
  let b, pproc, _, _ = np_fixture [] in
  ignore pproc;
  Alcotest.check_raises "wcet < 1"
    (Invalid_argument "non_preemptive_structure: wcet < 1") (fun () ->
      ignore
        (Blocks.non_preemptive_structure b ~task:"Z" ~release:0 ~wcet:0
           ~deadline:5 ~processor:0 ~exclusions:[]))

let test_np_exclusion_wiring () =
  let b, _, excl, st = np_fixture [ "ab" ] in
  Pnet.Builder.add_tokens b st.Blocks.pwr 1;
  let net = Pnet.Builder.build b in
  let slot = List.hd excl in
  let s0 = State.fire net (State.initial net) (Option.get st.Blocks.tw) 1 in
  let s1 = State.fire net s0 st.Blocks.tr 0 in
  let s2 = State.fire net s1 st.Blocks.tg 0 in
  check_int "exclusion slot taken at grab" 0 (State.tokens s2 slot);
  let s3 = State.fire net s2 st.Blocks.tc 3 in
  let s4 = State.fire net s3 st.Blocks.tf 0 in
  check_int "slot returned at finish" 1 (State.tokens s4 slot)

let pre_fixture exclusions =
  let b = fresh () in
  let pproc = Blocks.processor_block b "pproc" in
  let excl = List.map (fun n -> Relations.exclusion_place b ~name:n) exclusions in
  let st =
    Blocks.preemptive_structure b ~task:"T" ~release:0 ~wcet:2 ~deadline:10
      ~processor:pproc ~exclusions:excl
  in
  Pnet.Builder.add_tokens b st.Blocks.pwr 1;
  (Pnet.Builder.build b, pproc, excl, st)

let test_preemptive_unit_loop () =
  let net, pproc, _, st = pre_fixture [] in
  check_bool "no exclusion stage" true (st.Blocks.te = None);
  let s1 = State.fire net (State.initial net) st.Blocks.tr 0 in
  (* two unit tokens pending *)
  let s2 = State.fire net s1 st.Blocks.tg 0 in
  check_int "proc taken for the unit" 0 (State.tokens s2 pproc);
  let s3 = State.fire net s2 st.Blocks.tc 1 in
  check_int "proc released between units" 1 (State.tokens s3 pproc);
  check_bool "tf not yet enabled" false (State.is_enabled s3 st.Blocks.tf);
  let s4 = State.fire net s3 st.Blocks.tg 0 in
  let s5 = State.fire net s4 st.Blocks.tc 1 in
  check_bool "tf enabled after c units" true (State.is_enabled s5 st.Blocks.tf);
  let s6 = State.fire net s5 st.Blocks.tf 0 in
  check_int "finished" 1 (State.tokens s6 st.Blocks.pf)

let test_preemptive_exclusion_stage () =
  let net, _, excl, st = pre_fixture [ "xy" ] in
  let te = Option.get st.Blocks.te in
  let slot = List.hd excl in
  let s1 = State.fire net (State.initial net) st.Blocks.tr 0 in
  check_bool "units not pending before te" false (State.is_enabled s1 st.Blocks.tg);
  let s2 = State.fire net s1 te 0 in
  check_int "slot held for the whole instance" 0 (State.tokens s2 slot);
  let s3 = State.fire net s2 st.Blocks.tg 0 in
  let s4 = State.fire net s3 st.Blocks.tc 1 in
  check_int "slot still held between units" 0 (State.tokens s4 slot);
  let s5 = State.fire net s4 st.Blocks.tg 0 in
  let s6 = State.fire net s5 st.Blocks.tc 1 in
  let s7 = State.fire net s6 st.Blocks.tf 0 in
  check_int "slot returned at finish" 1 (State.tokens s7 slot)

let suite =
  [
    case "processor block" test_processor_block;
    case "fork block" test_fork_block;
    case "join block" test_join_block;
    case "arrival block (multiple instances)" test_arrival_block_multi;
    case "arrival block (single instance)" test_arrival_block_single_instance;
    case "arrival rejects zero instances" test_arrival_rejects_zero_instances;
    case "deadline block catches misses" test_deadline_block_miss_and_ok;
    case "deadline-ok outranks the miss" test_deadline_ok_outranks_miss;
    case "non-preemptive structure" suite_np_structure;
    case "wcet >= 1 enforced" test_np_wcet_rejected;
    case "np exclusion wiring" test_np_exclusion_wiring;
    case "preemptive unit loop" test_preemptive_unit_loop;
    case "preemptive exclusion stage" test_preemptive_exclusion_stage;
  ]
