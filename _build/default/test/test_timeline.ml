module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Schedule = Ezrt_sched.Schedule
module Timeline = Ezrt_sched.Timeline
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let timeline_of spec =
  let model = Translate.translate spec in
  match Search.find_schedule model with
  | Ok schedule, _ -> (model, Timeline.of_schedule model schedule)
  | Error f, _ -> Alcotest.failf "infeasible: %s" (Search.failure_to_string f)

let test_quickstart_order () =
  let model, segs = timeline_of Case_studies.quickstart in
  check_int "three segments" 3 (List.length segs);
  let by_task i =
    List.find (fun (s : Timeline.segment) -> s.Timeline.task = i) segs
  in
  let sample = by_task 0 and filter = by_task 1 and actuate = by_task 2 in
  check_bool "precedence order" true
    (sample.Timeline.finish <= filter.Timeline.start
     && filter.Timeline.finish <= actuate.Timeline.start);
  check_int "sample runs its wcet" 2 (Timeline.duration sample);
  check_bool "np segments are not resumed" true
    (List.for_all (fun (s : Timeline.segment) -> not s.Timeline.resumed) segs);
  ignore model

let test_busy_time_is_total_work () =
  let model, segs = timeline_of Case_studies.mine_pump in
  let expected =
    Array.to_list model.Translate.tasks
    |> List.mapi (fun i (t : Task.t) ->
           model.Translate.instance_counts.(i) * t.Task.wcet)
    |> List.fold_left ( + ) 0
  in
  check_int "busy = sum of instance wcets" expected (Timeline.busy_time segs);
  check_int "idle is the rest" (30000 - expected)
    (Timeline.idle_time ~horizon:30000 segs)

let test_preemptive_merging () =
  let _, segs = timeline_of Case_studies.fig8_preemptive in
  (* every segment of a preemptive task merges contiguous units: no two
     consecutive segments of the same instance may touch *)
  let by_instance = Hashtbl.create 8 in
  List.iter
    (fun (s : Timeline.segment) ->
      let key = (s.Timeline.task, s.Timeline.instance) in
      Hashtbl.replace by_instance key
        (s :: Option.value (Hashtbl.find_opt by_instance key) ~default:[]))
    segs;
  Hashtbl.iter
    (fun _ runs ->
      let runs =
        List.sort (fun (a : Timeline.segment) b -> compare a.Timeline.start b.Timeline.start) runs
      in
      List.iteri
        (fun i (s : Timeline.segment) ->
          check_bool "resume flag on later parts" true
            (s.Timeline.resumed = (i > 0)))
        runs;
      let rec gaps = function
        | (a : Timeline.segment) :: (b :: _ as rest) ->
          check_bool "maximal segments" true (b.Timeline.start > a.Timeline.finish);
          gaps rest
        | [ _ ] | [] -> ()
      in
      gaps runs)
    by_instance

let test_instances_numbered_in_order () =
  let _, segs = timeline_of Case_studies.mine_pump in
  let firsts = Hashtbl.create 16 in
  List.iter
    (fun (s : Timeline.segment) ->
      let key = (s.Timeline.task, s.Timeline.instance) in
      if not (Hashtbl.mem firsts key) then
        Hashtbl.replace firsts key s.Timeline.start)
    segs;
  Hashtbl.iter
    (fun (task, instance) start ->
      if instance > 0 then
        match Hashtbl.find_opt firsts (task, instance - 1) with
        | Some prev -> check_bool "later instance starts later" true (prev < start)
        | None -> Alcotest.fail "missing previous instance")
    firsts

let test_energy_accounting () =
  let spec =
    Spec.make ~name:"energy"
      ~tasks:
        [
          Task.make ~name:"a" ~energy:5 ~wcet:1 ~deadline:10 ~period:10 ();
          Task.make ~name:"b" ~energy:3 ~wcet:1 ~deadline:20 ~period:20 ();
        ]
      ()
  in
  let model, segs = timeline_of spec in
  (* hyper-period 20: a runs twice, b once *)
  check_int "total energy" ((2 * 5) + 3) (Timeline.energy_of model segs);
  check_bool "per-task breakdown" true
    (Timeline.energy_by_task model segs = [ ("a", 10); ("b", 3) ])

let test_energy_zero_by_default () =
  let model, segs = timeline_of Case_studies.quickstart in
  check_int "no energy annotations" 0 (Timeline.energy_of model segs)

let suite =
  [
    case "quickstart precedence order" test_quickstart_order;
    case "energy accounting" test_energy_accounting;
    case "energy defaults to zero" test_energy_zero_by_default;
    slow_case "busy time equals the workload" test_busy_time_is_total_work;
    case "preemptive segments merge maximally" test_preemptive_merging;
    slow_case "instances numbered chronologically" test_instances_numbered_in_order;
  ]
