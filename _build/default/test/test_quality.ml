module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Timeline = Ezrt_sched.Timeline
module Quality = Ezrt_sched.Quality
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let quality_of spec =
  let model = Translate.translate spec in
  match Search.find_schedule model with
  | Ok schedule, _ ->
    (model, Quality.of_timeline model (Timeline.of_schedule model schedule))
  | Error f, _ -> Alcotest.failf "infeasible: %s" (Search.failure_to_string f)

let test_quickstart_quality () =
  let _, q = quality_of Case_studies.quickstart in
  (* sample [0,2), filter [2,6), actuate [6,9) *)
  let by name = List.find (fun t -> t.Quality.task = name) q.Quality.tasks in
  let sample = by "sample" and actuate = by "actuate" in
  check_int "sample response" 2 sample.Quality.worst_response;
  check_int "sample slack" 8 sample.Quality.worst_slack;
  check_int "actuate response" 9 actuate.Quality.worst_response;
  check_int "no preemptions" 0 q.Quality.total_preemptions;
  check_int "three context switches" 3 q.Quality.context_switches;
  check_int "busy" 9 q.Quality.busy;
  check_int "idle" 11 q.Quality.idle;
  check_int "makespan" 9 q.Quality.makespan

let test_single_instance_statistics () =
  let _, q = quality_of Case_studies.quickstart in
  List.iter
    (fun t ->
      check_int "best = worst for single instances" t.Quality.worst_response
        t.Quality.best_response;
      check_bool "avg matches" true
        (abs_float (t.Quality.avg_response -. float_of_int t.Quality.worst_response)
         < 1e-9);
      check_int "no jitter with one instance" 0 t.Quality.start_jitter)
    q.Quality.tasks

let test_preemptions_counted () =
  let _, q = quality_of Case_studies.fig8_preemptive in
  check_bool "preempted instances resume" true (q.Quality.total_preemptions > 0);
  check_int "rows = segments" q.Quality.context_switches
    (let model = Translate.translate Case_studies.fig8_preemptive in
     match Search.find_schedule model with
     | Ok s, _ -> List.length (Timeline.of_schedule model s)
     | Error _, _ -> -1)

let test_jitter_measured () =
  let _, q = quality_of Case_studies.mine_pump in
  (* PMC has 375 instances competing with slower tasks: its start
     offset necessarily varies *)
  let pmc = List.find (fun t -> t.Quality.task = "PMC") q.Quality.tasks in
  check_int "instances" 375 pmc.Quality.instances;
  check_bool "nonnegative slack everywhere" true
    (List.for_all (fun t -> t.Quality.worst_slack >= 0) q.Quality.tasks);
  check_bool "responses within deadlines" true
    (List.for_all2
       (fun t (task : Task.t) -> t.Quality.worst_response <= task.Task.deadline)
       q.Quality.tasks Case_studies.mine_pump.Spec.tasks)

let test_incomplete_timeline_rejected () =
  let model = Translate.translate Case_studies.quickstart in
  match Search.find_schedule model with
  | Error _, _ -> Alcotest.fail "infeasible"
  | Ok schedule, _ -> (
    let segments = Timeline.of_schedule model schedule in
    match Quality.of_timeline model (List.tl segments) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected rejection")

let test_pp () =
  let _, q = quality_of Case_studies.fig8_preemptive in
  let s = Format.asprintf "%a" Quality.pp q in
  check_bool "renders" true (String.length s > 100)

let suite =
  [
    case "quickstart quality numbers" test_quickstart_quality;
    case "single-instance statistics" test_single_instance_statistics;
    case "preemptions counted" test_preemptions_counted;
    slow_case "jitter on the mine pump" test_jitter_measured;
    case "incomplete timelines rejected" test_incomplete_timeline_rejected;
    case "report renders" test_pp;
  ]
