module Rta = Ezrt_baseline.Rta
module Sim = Ezrt_baseline.Sim
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
open Test_util

let spec_of tasks = Spec.make ~name:"rta" ~tasks ()

let analyze_exn ?policy spec =
  match Rta.analyze ?policy spec with
  | Ok report -> report
  | Error msg -> Alcotest.failf "rta: %s" msg

(* The textbook example: three preemptive tasks under RM. *)
let classic =
  spec_of
    [
      Task.make ~name:"t1" ~wcet:3 ~deadline:7 ~period:7 ~mode:Task.Preemptive ();
      Task.make ~name:"t2" ~wcet:3 ~deadline:12 ~period:12 ~mode:Task.Preemptive ();
      Task.make ~name:"t3" ~wcet:5 ~deadline:20 ~period:20 ~mode:Task.Preemptive ();
    ]

let test_classic_response_times () =
  let report = analyze_exn ~policy:Rta.Rate_monotonic classic in
  let response name =
    (List.find (fun (r : Rta.task_report) -> r.Rta.task = name) report.Rta.tasks)
      .Rta.response_time
  in
  (* R1 = 3; R2 = 3 + 3 = 6; R3 iterates 5 -> 11 -> 14 -> 17 -> 20 -> 20 *)
  check_bool "R(t1)" true (response "t1" = Some 3);
  check_bool "R(t2)" true (response "t2" = Some 6);
  check_bool "R(t3)" true (response "t3" = Some 20);
  check_bool "all schedulable" true report.Rta.all_schedulable

let test_utilization_bound () =
  let report = analyze_exn classic in
  (* U = 3/7 + 3/12 + 5/20 = 0.9286 > bound(3) = 0.7798 *)
  check_bool "U" true (abs_float (report.Rta.utilization -. 0.9286) < 0.001);
  check_bool "bound" true
    (abs_float (report.Rta.liu_layland_bound -. 0.7798) < 0.001);
  check_bool "inconclusive by utilization alone" false
    report.Rta.passes_utilization_test

let test_miss_detected () =
  (* U = 1.0: the fixed point of lo lands at 16, past its deadline 15 *)
  let tight =
    spec_of
      [
        Task.make ~name:"hi" ~wcet:5 ~deadline:8 ~period:8 ~mode:Task.Preemptive ();
        Task.make ~name:"lo" ~wcet:6 ~deadline:15 ~period:16 ~mode:Task.Preemptive ();
      ]
  in
  let report = analyze_exn ~policy:Rta.Rate_monotonic tight in
  let lo = List.nth report.Rta.tasks 1 in
  check_bool "fixed point past the deadline" true (lo.Rta.response_time = Some 16);
  check_bool "flagged as a miss" false lo.Rta.schedulable;
  check_bool "not schedulable" false report.Rta.all_schedulable

let test_blocking_term () =
  (* a non-preemptive low-priority task blocks the high one *)
  let mixed =
    spec_of
      [
        Task.make ~name:"hi" ~wcet:2 ~deadline:6 ~period:10 ~mode:Task.Preemptive ();
        Task.make ~name:"lo" ~wcet:5 ~deadline:20 ~period:20 () (* NP *);
      ]
  in
  let report = analyze_exn ~policy:Rta.Deadline_monotonic mixed in
  let hi = List.hd report.Rta.tasks in
  check_string "hi first" "hi" hi.Rta.task;
  check_int "blocked by the np task" 5 hi.Rta.blocking;
  check_bool "R(hi) includes blocking" true (hi.Rta.response_time = Some 7);
  check_bool "hi misses because of blocking" false hi.Rta.schedulable;
  check_bool "whole set flagged" false report.Rta.all_schedulable

let test_rejects_relations_and_phases () =
  let with_prec =
    Spec.make ~name:"p"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:1 ~deadline:5 ~period:10 ();
          Task.make ~name:"b" ~wcet:1 ~deadline:5 ~period:10 ();
        ]
      ~precedences:[ ("a", "b") ]
      ()
  in
  check_bool "relations rejected" true (Result.is_error (Rta.analyze with_prec));
  let with_phase =
    spec_of [ Task.make ~name:"a" ~phase:3 ~wcet:1 ~deadline:5 ~period:10 () ]
  in
  check_bool "phases rejected" true (Result.is_error (Rta.analyze with_phase))

let test_pp_renders () =
  let report = analyze_exn classic in
  let s = Format.asprintf "%a" Rta.pp report in
  check_bool "mentions the bound" true (String.length s > 40)

(* Soundness against the simulator: when RTA says every preemptive,
   independent, synchronous task meets its deadline, the DM simulation
   agrees. *)
let preemptive_spec_gen =
  let open QCheck.Gen in
  let task i =
    let* period = oneofl [ 8; 12; 16; 24 ] in
    let* wcet = int_range 1 3 in
    return
      (Task.make
         ~name:(Printf.sprintf "t%d" i)
         ~wcet ~deadline:period ~period ~mode:Task.Preemptive ())
  in
  let* n = int_range 1 4 in
  let* tasks =
    List.fold_right
      (fun i acc ->
        let* rest = acc in
        let* t = task i in
        return (t :: rest))
      (List.init n Fun.id) (return [])
  in
  return (spec_of tasks)

let prop_rta_sound_vs_simulation =
  qcheck ~count:80 "RTA-schedulable implies DM-simulation feasible"
    (QCheck.make ~print:(Format.asprintf "%a" Spec.pp) preemptive_spec_gen)
    (fun spec ->
      QCheck.assume (Ezrt_spec.Validate.is_valid spec);
      match Rta.analyze ~policy:Rta.Deadline_monotonic spec with
      | Error _ -> true
      | Ok report ->
        if not report.Rta.all_schedulable then true
        else (Sim.simulate Sim.Dm spec).Sim.feasible)

let suite =
  [
    case "classic response times" test_classic_response_times;
    case "utilization bound" test_utilization_bound;
    case "response past the deadline detected" test_miss_detected;
    case "np blocking term" test_blocking_term;
    case "relations and phases rejected" test_rejects_relations_and_phases;
    case "report renders" test_pp_renders;
    prop_rta_sound_vs_simulation;
  ]
