open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let parse_ok s =
  match Query.parse s with
  | Ok q -> q
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let parse_err s =
  match Query.parse s with
  | Ok _ -> Alcotest.failf "expected a syntax error for %S" s
  | Error _ -> ()

let test_parse_shapes () =
  (match parse_ok "EF p >= 1" with
  | Query.Ef (Query.Atom ([ ("p", 1) ], Query.Ge, 1)) -> ()
  | q -> Alcotest.failf "wrong AST: %s" (Query.to_string q));
  (match parse_ok "AG 2 a + b <= 3" with
  | Query.Ag (Query.Atom ([ ("a", 2); ("b", 1) ], Query.Le, 3)) -> ()
  | q -> Alcotest.failf "wrong AST: %s" (Query.to_string q));
  (match parse_ok "EF deadlock" with
  | Query.Ef Query.Deadlock -> ()
  | q -> Alcotest.failf "wrong AST: %s" (Query.to_string q));
  match parse_ok "AG not (a = 0 || b != 2) && c < 5" with
  | Query.Ag (Query.And (Query.Not (Query.Or _), Query.Atom _)) -> ()
  | q -> Alcotest.failf "wrong AST: %s" (Query.to_string q)

let test_parse_errors () =
  parse_err "";
  parse_err "XX p >= 1";
  parse_err "EF p";
  parse_err "EF p >= x";
  parse_err "EF (p >= 1";
  parse_err "EF p >= 1 extra";
  parse_err "EF >= 1";
  parse_err "EF p ~ 1"

let test_to_string_roundtrip () =
  List.iter
    (fun s ->
      let q = parse_ok s in
      let q' = parse_ok (Query.to_string q) in
      check_bool ("roundtrip " ^ s) true (q = q'))
    [
      "EF p >= 1";
      "AG 2 a + b <= 3";
      "EF deadlock";
      "AG not (a = 0 || b != 2) && c < 5";
      "EF a > 0 && (b < 2 || deadlock)";
    ]

let check_q net s =
  match Query.check net (parse_ok s) with
  | Ok v -> v
  | Error msg -> Alcotest.failf "check %S: %s" s msg

let test_simple_net_queries () =
  let net = sequential_net () in
  (* token flows p0 -> p1 -> p2 *)
  (match check_q net "EF p2 >= 1" with
  | Query.Holds [ "t0"; "t1" ] -> ()
  | v -> Alcotest.failf "wrong verdict: %s" (Query.verdict_to_string v));
  (match check_q net "AG p0 + p1 + p2 = 1" with
  | Query.Holds [] -> ()
  | v -> Alcotest.failf "invariant: %s" (Query.verdict_to_string v));
  (match check_q net "AG p2 = 0" with
  | Query.Fails [ "t0"; "t1" ] -> ()
  | v -> Alcotest.failf "counterexample: %s" (Query.verdict_to_string v));
  (match check_q net "EF deadlock" with
  | Query.Holds _ -> ()
  | v -> Alcotest.failf "deadlock: %s" (Query.verdict_to_string v));
  match check_q net "EF p0 >= 2" with
  | Query.Fails [] -> ()
  | v -> Alcotest.failf "unreachable: %s" (Query.verdict_to_string v)

let test_unknown_place_reported () =
  match Query.check (sequential_net ()) (parse_ok "EF ghost >= 1") with
  | Error msg -> check_bool "names the place" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected an error"

let test_unknown_on_budget () =
  let net = ring_net 4 1 in
  (* a ring never deadlocks; with a tiny budget the answer is Unknown *)
  match Query.check ~max_states:1 net (parse_ok "EF deadlock") with
  | Ok Query.Unknown -> ()
  | Ok v -> Alcotest.failf "wrong verdict: %s" (Query.verdict_to_string v)
  | Error msg -> Alcotest.fail msg

let test_translated_properties () =
  let model = Translate.translate Case_studies.fig3_precedence in
  let net = model.Translate.net in
  let holds s =
    match check_q net s with
    | Query.Holds _ -> true
    | Query.Fails _ | Query.Unknown -> false
  in
  check_bool "processor 1-safe" true (holds "AG pproc <= 1");
  check_bool "final marking reachable" true (holds "EF pend >= 1");
  check_bool "no deadline misses in the earliest semantics" true
    (holds "AG pdm_T1 = 0 && pdm_T2 = 0");
  check_bool "precedence: T2 never computes before T1 finished" true
    (holds "AG (pwc_T2 = 0 || pf_T1 + pe_T1 >= 1)")

let test_witness_replays () =
  (* the EF witness is a real firing sequence: replay it *)
  let model = Translate.translate Case_studies.quickstart in
  let net = model.Translate.net in
  match check_q net "EF pend >= 1" with
  | Query.Holds witness ->
    let s =
      List.fold_left
        (fun s name ->
          let tid = Pnet.find_transition net name in
          State.fire net s tid (State.dlb net s tid))
        (State.initial net) witness
    in
    check_int "witness reaches MF" 1
      (State.tokens s (Pnet.find_place net "pend"))
  | v -> Alcotest.failf "expected a witness: %s" (Query.verdict_to_string v)

let test_exclusion_property () =
  let model = Translate.translate Case_studies.fig4_exclusion in
  let net = model.Translate.net in
  match check_q net "AG pwx_T0 + pwx_T2 <= 1" with
  | Query.Holds [] -> ()
  | v -> Alcotest.failf "exclusion: %s" (Query.verdict_to_string v)

let test_class_semantics () =
  let net = (Translate.translate Case_studies.fig3_precedence).Translate.net in
  let q s = match Query.parse s with Ok q -> q | Error e -> failwith e in
  (* prioritized: same invariants as the discrete walk *)
  (match Query.check_classes net (q "AG pproc <= 1") with
  | Ok (Query.Holds []) -> ()
  | Ok v -> Alcotest.failf "classes safety: %s" (Query.verdict_to_string v)
  | Error e -> Alcotest.fail e);
  (match Query.check_classes net (q "EF pend >= 1") with
  | Ok (Query.Holds (_ :: _)) -> ()
  | Ok v -> Alcotest.failf "classes MF: %s" (Query.verdict_to_string v)
  | Error e -> Alcotest.fail e);
  (* the prioritized class walk, like the discrete one, misses the
     late-release deadline miss... *)
  (match Query.check_classes net (q "EF pdm_T2 >= 1") with
  | Ok (Query.Fails []) -> ()
  | Ok v -> Alcotest.failf "prioritized miss: %s" (Query.verdict_to_string v)
  | Error e -> Alcotest.fail e);
  (* ...while the classical (unprioritized) semantics reaches it *)
  match Query.check_classes ~priorities:false net (q "EF pdm_T2 >= 1") with
  | Ok (Query.Holds (_ :: _)) -> ()
  | Ok v -> Alcotest.failf "unprioritized miss: %s" (Query.verdict_to_string v)
  | Error e -> Alcotest.fail e

let test_class_budget () =
  let net = (Translate.translate Case_studies.fig4_exclusion).Translate.net in
  let q = match Query.parse "EF deadlock" with Ok q -> q | Error e -> failwith e in
  match Query.check_classes ~max_classes:1 net q with
  | Ok Query.Unknown -> ()
  | Ok v -> Alcotest.failf "wrong verdict: %s" (Query.verdict_to_string v)
  | Error e -> Alcotest.fail e

let suite =
  [
    case "class-graph semantics bracket" test_class_semantics;
    case "class budget gives Unknown" test_class_budget;
    case "parse shapes" test_parse_shapes;
    case "parse errors" test_parse_errors;
    case "to_string roundtrips" test_to_string_roundtrip;
    case "queries on a simple net" test_simple_net_queries;
    case "unknown places reported" test_unknown_place_reported;
    case "budget exhaustion gives Unknown" test_unknown_on_budget;
    case "properties of a translated model" test_translated_properties;
    case "EF witnesses replay" test_witness_replays;
    case "exclusion as a marking invariant" test_exclusion_property;
  ]
