open Ezrt_tpn
open Test_util

let test_builder_basic () =
  let net = sequential_net () in
  check_int "places" 3 (Pnet.place_count net);
  check_int "transitions" 2 (Pnet.transition_count net);
  check_int "arcs" 4 (Pnet.arc_count net);
  check_string "place name" "p1" (Pnet.place_name net 1);
  check_string "transition name" "t1" (Pnet.transition_name net 1);
  check_int "m0" 1 net.Pnet.m0.(0);
  check_int "m0 empty" 0 net.Pnet.m0.(1)

let test_duplicate_place () =
  let b = Pnet.Builder.create "dup" in
  let _ = Pnet.Builder.add_place b "p" in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Builder.add_place: duplicate place \"p\"") (fun () ->
      ignore (Pnet.Builder.add_place b "p"))

let test_duplicate_transition () =
  let b = Pnet.Builder.create "dup" in
  let _ = Pnet.Builder.add_transition b "t" Time_interval.zero in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Builder.add_transition: duplicate transition \"t\"")
    (fun () -> ignore (Pnet.Builder.add_transition b "t" Time_interval.zero))

let test_weight_accumulation () =
  let b = Pnet.Builder.create "acc" in
  let p = Pnet.Builder.add_place b ~tokens:5 "p" in
  let q = Pnet.Builder.add_place b "q" in
  let t = Pnet.Builder.add_transition b "t" Time_interval.zero in
  Pnet.Builder.arc_pt b p t ~weight:2;
  Pnet.Builder.arc_pt b p t;
  Pnet.Builder.arc_tp b t q;
  let net = Pnet.Builder.build b in
  (match net.Pnet.pre.(t) with
  | [| (p', 3) |] -> check_int "same place" p p'
  | _ -> Alcotest.fail "expected accumulated weight 3");
  check_int "arc count counts pairs" 2 (Pnet.arc_count net)

let test_bad_weight () =
  let b = Pnet.Builder.create "w" in
  let p = Pnet.Builder.add_place b "p" in
  let t = Pnet.Builder.add_transition b "t" Time_interval.zero in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Builder.arc_pt: weight < 1") (fun () ->
      Pnet.Builder.arc_pt b p t ~weight:0)

let test_no_input_rejected () =
  let b = Pnet.Builder.create "noin" in
  let p = Pnet.Builder.add_place b "p" in
  let t = Pnet.Builder.add_transition b "t" Time_interval.zero in
  Pnet.Builder.arc_tp b t p;
  Alcotest.check_raises "no input arc"
    (Invalid_argument "Builder.build: transition \"t\" has no input arc")
    (fun () -> ignore (Pnet.Builder.build b))

let test_extra_tokens () =
  let b = Pnet.Builder.create "tok" in
  let p = Pnet.Builder.add_place b ~tokens:1 "p" in
  let t = Pnet.Builder.add_transition b "t" Time_interval.zero in
  Pnet.Builder.arc_pt b p t;
  Pnet.Builder.add_tokens b p 2;
  let net = Pnet.Builder.build b in
  check_int "accumulated m0" 3 net.Pnet.m0.(p)

let test_find () =
  let net = conflict_net () in
  check_int "find place" 0 (Pnet.find_place net "p0");
  check_int "find transition" 1 (Pnet.find_transition net "t1");
  check_bool "find_opt none" true (Pnet.find_place_opt net "zz" = None);
  Alcotest.check_raises "not found" Not_found (fun () ->
      ignore (Pnet.find_place net "zz"))

let test_structural_conflict () =
  let net = conflict_net () in
  check_bool "t0 vs t1 conflict" true (Pnet.in_structural_conflict net 0 1);
  check_bool "self is not a conflict" false (Pnet.in_structural_conflict net 0 0);
  let seq = sequential_net () in
  check_bool "sequential no conflict" false
    (Pnet.in_structural_conflict seq 0 1)

let test_consumers_index () =
  let net = conflict_net () in
  check_bool "p0 consumed by both" true (net.Pnet.consumers.(0) = [| 0; 1 |]);
  check_bool "p1 has no consumers" true (net.Pnet.consumers.(1) = [||])

let test_priority_and_code () =
  let b = Pnet.Builder.create "pc" in
  let p = Pnet.Builder.add_place b ~tokens:1 "p" in
  let t =
    Pnet.Builder.add_transition b ~priority:7 ~code:"do_it();" "t"
      Time_interval.zero
  in
  Pnet.Builder.arc_pt b p t;
  let net = Pnet.Builder.build b in
  check_int "priority" 7 (Pnet.priority net t);
  check_bool "code kept" true
    (net.Pnet.transitions.(t).Pnet.code = Some "do_it();")

let test_summary () =
  let s = Format.asprintf "%a" Pnet.pp_summary (sequential_net ()) in
  check_string "summary" "sequential: |P|=3, |T|=2, |F|=4, tokens(m0)=1" s

let suite =
  [
    case "builder basics" test_builder_basic;
    case "duplicate place rejected" test_duplicate_place;
    case "duplicate transition rejected" test_duplicate_transition;
    case "arc weight accumulation" test_weight_accumulation;
    case "bad weight rejected" test_bad_weight;
    case "inputless transition rejected" test_no_input_rejected;
    case "extra initial tokens" test_extra_tokens;
    case "find by name" test_find;
    case "structural conflicts" test_structural_conflict;
    case "consumers index" test_consumers_index;
    case "priority and code" test_priority_and_code;
    case "summary rendering" test_summary;
  ]
