module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Timeline = Ezrt_sched.Timeline
module Validator = Ezrt_sched.Validator
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Message = Ezrt_spec.Message
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let good_timeline spec =
  let model = Translate.translate spec in
  match Search.find_schedule model with
  | Ok schedule, _ -> (model, Timeline.of_schedule model schedule)
  | Error f, _ -> Alcotest.failf "infeasible: %s" (Search.failure_to_string f)

let expect_violation pred name model segs =
  match Validator.check model segs with
  | Ok () -> Alcotest.failf "%s: expected a violation" name
  | Error vs ->
    check_bool name true (List.exists pred vs);
    (* messages render *)
    List.iter
      (fun v -> check_bool "renders" true (Validator.violation_to_string v <> ""))
      vs

let test_accepts_synthesized () =
  List.iter
    (fun (name, spec) ->
      if name <> "greedy-trap" && name <> "mine-pump" then begin
        let model, segs = good_timeline spec in
        match Validator.check model segs with
        | Ok () -> ()
        | Error vs ->
          Alcotest.failf "%s: %s" name
            (Validator.violation_to_string (List.hd vs))
      end)
    Case_studies.all

let tamper f spec =
  let model, segs = good_timeline spec in
  (model, f segs)

let test_missing_instance () =
  let model, segs =
    tamper (function _ :: rest -> rest | [] -> []) Case_studies.quickstart
  in
  expect_violation
    (function Validator.Wrong_instance_count _ -> true | _ -> false)
    "missing instance" model segs

let test_wrong_amount () =
  let shrink = function
    | (s : Timeline.segment) :: rest ->
      { s with Timeline.finish = s.Timeline.finish - 1 } :: rest
    | [] -> []
  in
  let model, segs = tamper shrink Case_studies.quickstart in
  expect_violation
    (function Validator.Wrong_amount _ -> true | _ -> false)
    "wrong amount" model segs

let test_overlap () =
  let duplicate_shifted = function
    | (s : Timeline.segment) :: rest ->
      (* a copy of the first segment pretending to be the next
         instance, overlapping in time *)
      s :: { s with Timeline.task = s.Timeline.task } :: rest
    | [] -> []
  in
  let model, segs = tamper duplicate_shifted Case_studies.quickstart in
  expect_violation
    (function
      | Validator.Processor_overlap _ | Validator.Wrong_amount _ -> true
      | _ -> false)
    "overlap" model segs

let test_deadline_missed () =
  (* shift a whole instance past its deadline *)
  let late = function
    | (s : Timeline.segment) :: rest ->
      { s with Timeline.start = s.Timeline.start + 1000;
        Timeline.finish = s.Timeline.finish + 1000 }
      :: rest
    | [] -> []
  in
  let model, segs = tamper late Case_studies.quickstart in
  expect_violation
    (function Validator.Missed_deadline _ -> true | _ -> false)
    "deadline" model segs

let test_started_before_release () =
  let spec =
    Spec.make ~name:"rel"
      ~tasks:[ Task.make ~name:"a" ~release:5 ~wcet:2 ~deadline:10 ~period:10 () ]
      ()
  in
  let early = function
    | (s : Timeline.segment) :: rest ->
      { s with Timeline.start = 0; Timeline.finish = 2 } :: rest
    | [] -> []
  in
  let model, segs = tamper early spec in
  expect_violation
    (function Validator.Started_before_release _ -> true | _ -> false)
    "early start" model segs

let test_fragmented_np () =
  let split = function
    | (s : Timeline.segment) :: rest when Timeline.duration s >= 2 ->
      { s with Timeline.finish = s.Timeline.start + 1 }
      :: { s with Timeline.start = s.Timeline.finish + 2;
           Timeline.finish = s.Timeline.finish + 2 + (Timeline.duration s - 1);
           Timeline.resumed = true }
      :: rest
    | segs -> segs
  in
  let model, segs = tamper split Case_studies.quickstart in
  expect_violation
    (function
      | Validator.Fragmented_non_preemptive _ | Validator.Missed_deadline _ ->
        true
      | _ -> false)
    "fragmented np" model segs

let test_precedence_violation () =
  let model, segs = good_timeline Case_studies.fig3_precedence in
  (* swap the two tasks' windows *)
  let swapped =
    List.map
      (fun (s : Timeline.segment) ->
        if s.Timeline.task = 0 then
          { s with Timeline.start = 100; Timeline.finish = 100 + Timeline.duration s }
        else { s with Timeline.start = 0; Timeline.finish = Timeline.duration s })
      segs
  in
  expect_violation
    (function Validator.Precedence_violated _ -> true | _ -> false)
    "precedence" model swapped

let test_exclusion_violation () =
  let model, segs = good_timeline Case_studies.fig4_exclusion in
  (* force the two instances to interleave *)
  let forced =
    List.map
      (fun (s : Timeline.segment) ->
        if s.Timeline.task = 0 then
          { s with Timeline.start = 5; Timeline.finish = 5 + Timeline.duration s }
        else s)
      segs
  in
  expect_violation
    (function
      | Validator.Exclusion_interleaved _ | Validator.Processor_overlap _ ->
        true
      | _ -> false)
    "exclusion" model forced

let test_message_too_early () =
  let tasks =
    [
      Task.make ~name:"prod" ~wcet:2 ~deadline:20 ~period:40 ();
      Task.make ~name:"cons" ~wcet:2 ~deadline:40 ~period:40 ();
    ]
  in
  let messages =
    [ Message.make ~name:"m" ~sender:"prod" ~receiver:"cons" ~comm_time:5 () ]
  in
  let spec = Spec.make ~name:"msg" ~tasks ~messages () in
  let model, segs = good_timeline spec in
  (* move the consumer to start right after the producer, ignoring the
     5-unit transfer *)
  let early =
    List.map
      (fun (s : Timeline.segment) ->
        if s.Timeline.task = 1 then
          { s with Timeline.start = 2; Timeline.finish = 4 }
        else s)
      segs
  in
  expect_violation
    (function Validator.Message_too_early _ -> true | _ -> false)
    "message" model early

let suite =
  [
    case "accepts synthesized timelines" test_accepts_synthesized;
    case "missing instance" test_missing_instance;
    case "wrong executed amount" test_wrong_amount;
    case "processor overlap" test_overlap;
    case "missed deadline" test_deadline_missed;
    case "start before release" test_started_before_release;
    case "fragmented non-preemptive instance" test_fragmented_np;
    case "precedence violation" test_precedence_violation;
    case "exclusion interleaving" test_exclusion_violation;
    case "message delivered too late" test_message_too_early;
  ]
