module Stats = Ezrt_spec.Stats
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let test_mine_pump_stats () =
  let s = Stats.compute Case_studies.mine_pump in
  check_int "hyperperiod" 30000 s.Stats.hyperperiod;
  check_int "instances" 782 s.Stats.total_instances;
  check_int "busy" 9135 s.Stats.busy_time;
  check_bool "utilization" true (abs_float (s.Stats.total_utilization -. 0.3045) < 1e-4);
  check_bool "non-harmonic (80 does not divide 500)" false s.Stats.harmonic;
  (* PMC: c=10, d=20, p=80 -> density 0.5, laxity 10 *)
  let pmc = List.find (fun r -> r.Stats.name = "PMC") s.Stats.tasks in
  check_bool "PMC density" true (abs_float (pmc.Stats.density -. 0.5) < 1e-9);
  check_int "PMC laxity" 10 pmc.Stats.laxity;
  check_int "PMC instances" 375 pmc.Stats.instances;
  check_int "min laxity is PMC's" 10 s.Stats.min_laxity

let test_harmonic_detection () =
  let spec =
    Spec.make ~name:"h"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:1 ~deadline:10 ~period:10 ();
          Task.make ~name:"b" ~wcet:1 ~deadline:20 ~period:20 ();
          Task.make ~name:"c" ~wcet:1 ~deadline:40 ~period:40 ();
        ]
      ()
  in
  let s = Stats.compute spec in
  check_bool "harmonic chain" true s.Stats.harmonic;
  check_bool "period classes" true
    (s.Stats.period_classes = [ (10, 1); (20, 1); (40, 1) ])

let test_density_exceeds_utilization () =
  let spec =
    Spec.make ~name:"d"
      ~tasks:[ Task.make ~name:"a" ~wcet:2 ~deadline:4 ~period:20 () ]
      ()
  in
  let s = Stats.compute spec in
  check_bool "density 0.5 > util 0.1" true
    (s.Stats.total_density > s.Stats.total_utilization +. 0.39)

let test_pp () =
  let s = Stats.compute Case_studies.flight_control in
  check_bool "renders" true
    (String.length (Format.asprintf "%a" Stats.pp s) > 100)

let prop_busy_consistent =
  qcheck "busy time = sum of instance wcets" arbitrary_spec (fun spec ->
      let s = Stats.compute spec in
      s.Stats.busy_time
      = List.fold_left
          (fun acc (t : Task.t) ->
            acc + (Task.instances_in t s.Stats.hyperperiod * t.Task.wcet))
          0 spec.Spec.tasks)

let suite =
  [
    case "mine pump statistics" test_mine_pump_stats;
    case "harmonic detection" test_harmonic_detection;
    case "density vs utilization" test_density_exceeds_utilization;
    case "report renders" test_pp;
    prop_busy_consistent;
  ]
