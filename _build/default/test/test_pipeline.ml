(* Whole-pipeline matrix: every case study through both search engines,
   with every verification stage applied — the end-to-end contract in
   one parametric test per (spec, engine) pair. *)

open Ezrealtime
open Test_util

let stages name model schedule =
  (* 1. semantic replay *)
  let final = Schedule.replay model.Translate.net schedule in
  check_bool (name ^ ": replay reaches MF") true (Translate.is_final model final);
  (* 2. independent validation *)
  let segments = Timeline.of_schedule model schedule in
  (match Validator.check model segments with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "%s: %s" name (Validator.violation_to_string (List.hd vs)));
  (* 3. table/segment consistency *)
  let table = Table.of_segments segments in
  check_int (name ^ ": one row per segment") (List.length segments)
    (List.length table);
  (* 4. virtual-machine execution *)
  let outcome = Vm.execute ~overhead:0 model table in
  check_bool (name ^ ": vm reproduces the plan") true
    (outcome.Vm.segments = segments);
  check_int (name ^ ": no overruns") 0 outcome.Vm.overruns;
  (* 5. quality metrics are internally consistent *)
  let q = Quality.of_timeline model segments in
  check_int (name ^ ": busy time agrees") (Timeline.busy_time segments)
    q.Quality.busy;
  check_int
    (name ^ ": completed instances")
    (Array.fold_left ( + ) 0 model.Translate.instance_counts)
    outcome.Vm.completed;
  (* 6. schedule fits the cycle (the watchdog guarantees it) *)
  check_bool (name ^ ": fits the hyper-period") true
    (q.Quality.makespan <= model.Translate.horizon);
  (* 7. code generation succeeds in both layouts for every target *)
  List.iter
    (fun (tname, target) ->
      let program = Emit.program ~target model table in
      check_bool (name ^ "/" ^ tname ^ ": emits") true
        (String.length program > 400))
    Target.all

let engine_discrete model =
  match Search.find_schedule model with
  | Ok schedule, _ -> Some schedule
  | Error _, _ -> None

let engine_classes model =
  match Class_search.find_schedule model with
  | Ok schedule, _ -> Some schedule
  | Error _, _ -> None

let matrix_case (engine_name, engine) (spec_name, spec) () =
  let model = Translate.translate spec in
  match engine model with
  | Some schedule -> stages (spec_name ^ "/" ^ engine_name) model schedule
  | None -> Alcotest.failf "%s/%s: infeasible" spec_name engine_name

let suite =
  List.concat_map
    (fun ((engine_name, _) as engine) ->
      List.map
        (fun ((spec_name, _) as spec) ->
          let kind =
            (* the mine pump through the class engine takes seconds *)
            if spec_name = "mine-pump" then slow_case else case
          in
          kind
            (Printf.sprintf "%s via %s" spec_name engine_name)
            (matrix_case engine spec))
        Case_studies.all)
    [ ("discrete", engine_discrete); ("classes", engine_classes) ]
