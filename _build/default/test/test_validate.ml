module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Message = Ezrt_spec.Message
module Validate = Ezrt_spec.Validate
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let ok_task ?id ?(name = "t") ?mode ?phase ?release ?processor () =
  Task.make ?id ~name ?mode ?phase ?release ?processor ~wcet:1 ~deadline:5
    ~period:10 ()

let errors spec = (Validate.check spec).Validate.errors
let warnings spec = (Validate.check spec).Validate.warnings

let has_error pred spec = List.exists pred (errors spec)

let test_case_studies_valid () =
  List.iter
    (fun (name, spec) ->
      check_bool (name ^ " valid") true (Validate.is_valid spec))
    Case_studies.all

let test_no_tasks () =
  check_bool "no tasks" true
    (has_error (function Validate.No_tasks -> true | _ -> false)
       (Spec.make ~name:"e" ~tasks:[] ()))

let test_duplicate_ids () =
  let spec =
    Spec.make ~name:"d"
      ~tasks:[ ok_task ~id:"x" ~name:"a" (); ok_task ~id:"x" ~name:"b" () ]
      ()
  in
  check_bool "duplicate id" true
    (has_error (function Validate.Duplicate_task_id "x" -> true | _ -> false)
       spec)

let test_duplicate_names () =
  let spec =
    Spec.make ~name:"d"
      ~tasks:[ ok_task ~id:"x" (); ok_task ~id:"y" () ]
      ()
  in
  check_bool "duplicate name" true
    (has_error
       (function Validate.Duplicate_task_name "t" -> true | _ -> false)
       spec)

let bad_timing_spec task = Spec.make ~name:"b" ~tasks:[ task ] ()

let test_bad_timings () =
  let violates what task =
    check_bool what true
      (has_error
         (function Validate.Bad_timing (_, w) -> w = what | _ -> false)
         (bad_timing_spec task))
  in
  violates "c <= d" (Task.make ~name:"t" ~wcet:6 ~deadline:5 ~period:10 ());
  violates "d <= p" (Task.make ~name:"t" ~wcet:1 ~deadline:11 ~period:10 ());
  violates "r + c <= d"
    (Task.make ~name:"t" ~release:5 ~wcet:1 ~deadline:5 ~period:10 ());
  violates "ph >= 0"
    (Task.make ~name:"t" ~phase:(-1) ~wcet:1 ~deadline:5 ~period:10 ());
  violates "p >= 1" (Task.make ~name:"t" ~wcet:0 ~deadline:0 ~period:0 ())

let test_unknown_processor () =
  let spec =
    Spec.make ~name:"p" ~tasks:[ ok_task ~processor:"dsp7" () ] ()
  in
  check_bool "unknown processor" true
    (has_error
       (function Validate.Unknown_processor (_, "dsp7") -> true | _ -> false)
       spec)

let test_multi_processor () =
  let procs = [ Ezrt_spec.Processor.make "cpu0"; Ezrt_spec.Processor.make "cpu1" ] in
  let spec =
    Spec.make ~name:"m" ~processors:procs
      ~tasks:
        [ ok_task ~name:"a" ~processor:"cpu0" ();
          ok_task ~name:"b" ~processor:"cpu1" () ]
      ()
  in
  check_bool "multi processor rejected" true
    (has_error (function Validate.Multi_processor _ -> true | _ -> false) spec)

let test_unknown_refs_and_self () =
  let spec =
    Spec.make ~name:"r" ~tasks:[ ok_task () ]
      ~precedences:[ ("t", "ghost") ] ()
  in
  check_bool "unknown ref" true
    (has_error
       (function Validate.Unknown_task_ref (_, "ghost") -> true | _ -> false)
       spec);
  let self = Spec.make ~name:"s" ~tasks:[ ok_task () ] ~exclusions:[ ("t", "t") ] () in
  check_bool "self exclusion" true
    (has_error (function Validate.Self_relation _ -> true | _ -> false) self)

let test_precedence_cycle () =
  let spec =
    Spec.make ~name:"c"
      ~tasks:[ ok_task ~name:"a" (); ok_task ~name:"b" (); ok_task ~name:"c" () ]
      ~precedences:[ ("a", "b"); ("b", "c"); ("c", "a") ]
      ()
  in
  check_bool "cycle found" true
    (has_error (function Validate.Precedence_cycle _ -> true | _ -> false) spec)

let test_period_mismatch () =
  let spec =
    Spec.make ~name:"pm"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:1 ~deadline:5 ~period:10 ();
          Task.make ~name:"b" ~wcet:1 ~deadline:5 ~period:20 ();
        ]
      ~precedences:[ ("a", "b") ]
      ()
  in
  check_bool "period mismatch" true
    (has_error (function Validate.Period_mismatch _ -> true | _ -> false) spec)

let test_overutilized () =
  let spec =
    Spec.make ~name:"u"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:6 ~deadline:10 ~period:10 ();
          Task.make ~name:"b" ~wcet:5 ~deadline:10 ~period:10 ();
        ]
      ()
  in
  check_bool "overutilized" true
    (has_error (function Validate.Overutilized _ -> true | _ -> false) spec)

let test_message_checks () =
  let mk_msg sender receiver =
    Message.make ~name:"m" ~sender ~receiver ()
  in
  let base =
    [
      Task.make ~name:"a" ~wcet:1 ~deadline:5 ~period:10 ();
      Task.make ~name:"b" ~wcet:1 ~deadline:5 ~period:10 ();
    ]
  in
  let ghost =
    Spec.make ~name:"mg" ~tasks:base ~messages:[ mk_msg "a" "ghost" ] ()
  in
  check_bool "ghost receiver" true
    (has_error (function Validate.Unknown_task_ref _ -> true | _ -> false) ghost);
  let self = Spec.make ~name:"ms" ~tasks:base ~messages:[ mk_msg "a" "a" ] () in
  check_bool "self message" true
    (has_error (function Validate.Self_relation _ -> true | _ -> false) self)

let test_warnings () =
  let spec =
    Spec.make ~name:"w"
      ~tasks:[ ok_task ~name:"a" (); ok_task ~name:"b" () ]
      ~precedences:[ ("a", "b") ]
      ~exclusions:[ ("a", "b") ]
      ()
  in
  check_bool "redundant exclusion warned" true
    (List.exists
       (function Validate.Exclusion_with_precedence _ -> true | _ -> false)
       (warnings spec));
  let zero =
    Spec.make ~name:"z"
      ~tasks:[ Task.make ~name:"a" ~wcet:0 ~deadline:5 ~period:10 () ]
      ()
  in
  check_bool "zero wcet warned" true
    (List.exists
       (function Validate.Zero_wcet_task _ -> true | _ -> false)
       (warnings zero))

let test_check_exn () =
  Alcotest.check_raises "raises with message"
    (Failure "invalid specification e: specification has no tasks") (fun () ->
      Validate.check_exn (Spec.make ~name:"e" ~tasks:[] ()))

let test_error_strings_total () =
  (* every error renders without raising *)
  let samples =
    [
      Validate.No_tasks;
      Validate.Duplicate_task_id "x";
      Validate.Duplicate_task_name "x";
      Validate.Bad_timing ("t", "c <= d");
      Validate.Unknown_processor ("t", "p");
      Validate.Multi_processor [ "a"; "b" ];
      Validate.Unknown_task_ref ("precedence", "x");
      Validate.Self_relation ("exclusion", "x");
      Validate.Precedence_cycle [ "a"; "b"; "a" ];
      Validate.Period_mismatch ("precedence", "a", "b");
      Validate.Overutilized 1.5;
      Validate.Bad_message ("m", "oops");
    ]
  in
  List.iter
    (fun e -> check_bool "non-empty" true (Validate.error_to_string e <> ""))
    samples

let prop_generated_specs_valid =
  qcheck "generator produces valid specs" arbitrary_spec Validate.is_valid

let suite =
  [
    case "case studies validate" test_case_studies_valid;
    case "no tasks" test_no_tasks;
    case "duplicate ids" test_duplicate_ids;
    case "duplicate names" test_duplicate_names;
    case "bad timings" test_bad_timings;
    case "unknown processor" test_unknown_processor;
    case "multi-processor rejected" test_multi_processor;
    case "unknown refs and self relations" test_unknown_refs_and_self;
    case "precedence cycle" test_precedence_cycle;
    case "period mismatch" test_period_mismatch;
    case "overutilization" test_overutilized;
    case "message checks" test_message_checks;
    case "warnings" test_warnings;
    case "check_exn" test_check_exn;
    case "error strings total" test_error_strings_total;
    prop_generated_specs_valid;
  ]
