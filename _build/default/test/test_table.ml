module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Timeline = Ezrt_sched.Timeline
module Table = Ezrt_sched.Table
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let table_of spec =
  let model = Translate.translate spec in
  match Search.find_schedule model with
  | Ok schedule, _ -> (model, Table.of_schedule model schedule)
  | Error f, _ -> Alcotest.failf "infeasible: %s" (Search.failure_to_string f)

let test_rows_sorted_and_flagged () =
  let _, items = table_of Case_studies.fig8_preemptive in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      check_bool "rows by start time" true (a.Table.start <= b.Table.start);
      sorted rest
    | [ _ ] | [] -> ()
  in
  sorted items;
  check_bool "has resume rows" true
    (List.exists (fun i -> i.Table.resumed) items);
  check_bool "first row is a start" true
    (not (List.hd items).Table.resumed)

let contains_substring ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_fig8_comment_vocabulary () =
  let model, items = table_of Case_studies.fig8_preemptive in
  let comments = List.map (Table.row_comment model) items in
  check_bool "starts" true
    (List.exists (fun c -> Filename.check_suffix c "starts") comments);
  check_bool "preempts" true
    (List.exists (contains_substring ~needle:"preempts") comments);
  check_bool "resumes" true
    (List.exists (fun c -> Filename.check_suffix c "resumes") comments)

let test_fig8_short_names () =
  let model, items = table_of Case_studies.fig8_preemptive in
  (* TaskA#0 renders as A1 (Fig 8 numbering) *)
  let first = List.hd items in
  let comment = Table.row_comment model first in
  check_bool "short name with 1-based instance" true
    (String.length comment >= 2 && comment.[1] = '1')

let test_np_table_has_no_resumes () =
  let _, items = table_of Case_studies.mine_pump in
  check_int "one row per instance" 782 (List.length items);
  check_bool "no resume rows" true
    (List.for_all (fun i -> not i.Table.resumed) items)

let test_preempts_field_consistency () =
  let _, items = table_of Case_studies.fig8_preemptive in
  List.iter
    (fun item ->
      match item.Table.preempts with
      | None -> ()
      | Some (task, instance) ->
        (* the preempted instance must resume later *)
        check_bool "victim resumes later" true
          (List.exists
             (fun other ->
               other.Table.task = task && other.Table.instance = instance
               && other.Table.resumed
               && other.Table.start > item.Table.start)
             items);
        check_bool "a preempting row is not itself a resume" true
          (not item.Table.resumed))
    items

let suite =
  [
    case "rows sorted with resume flags" test_rows_sorted_and_flagged;
    case "Fig 8 comment vocabulary" test_fig8_comment_vocabulary;
    case "Fig 8 short names" test_fig8_short_names;
    case "non-preemptive tables have no resumes" test_np_table_has_no_resumes;
    case "preempts field consistency" test_preempts_field_consistency;
  ]
