open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let net_equal (a : Pnet.t) (b : Pnet.t) =
  a.Pnet.place_names = b.Pnet.place_names
  && Array.for_all2
       (fun (x : Pnet.transition) (y : Pnet.transition) ->
         x.Pnet.t_name = y.Pnet.t_name
         && Time_interval.equal x.Pnet.interval y.Pnet.interval
         && x.Pnet.priority = y.Pnet.priority)
       a.Pnet.transitions b.Pnet.transitions
  && a.Pnet.pre = b.Pnet.pre && a.Pnet.post = b.Pnet.post
  && a.Pnet.m0 = b.Pnet.m0

let roundtrip net =
  match Tina.of_string (Tina.to_string net) with
  | Ok net' -> net'
  | Error e -> Alcotest.failf "roundtrip: %s" (Tina.error_to_string e)

let test_writer_format () =
  let text = Tina.to_string (sequential_net ()) in
  check_bool "net line" true
    (String.length text > 4 && String.sub text 0 4 = "net ");
  List.iter
    (fun needle ->
      let rec contains i =
        i + String.length needle <= String.length text
        && (String.sub text i (String.length needle) = needle || contains (i + 1))
      in
      check_bool needle true (contains 0))
    [ "tr t0 [2,5] p0 -> p1"; "tr t1 [0,0] p1 -> p2"; "pl p0 (1)"; "pl p1\n" ]

let test_roundtrip_small () =
  check_bool "sequential" true
    (net_equal (sequential_net ()) (roundtrip (sequential_net ())));
  check_bool "conflict" true
    (net_equal (conflict_net ()) (roundtrip (conflict_net ())))

let test_roundtrip_case_studies () =
  List.iter
    (fun (name, spec) ->
      if name <> "mine-pump" then begin
        let net = (Translate.translate spec).Translate.net in
        (* priorities survive through the # priority comments *)
        check_bool (name ^ " roundtrips") true (net_equal net (roundtrip net))
      end)
    Case_studies.all

let test_weights_and_unbounded () =
  let b = Pnet.Builder.create "features" in
  let p = Pnet.Builder.add_place b ~tokens:3 "p" in
  let q = Pnet.Builder.add_place b "q" in
  let t = Pnet.Builder.add_transition b "t" (Time_interval.make_unbounded 2) in
  Pnet.Builder.arc_pt b p t ~weight:2;
  Pnet.Builder.arc_tp b t q ~weight:5;
  let net = Pnet.Builder.build b in
  let text = Tina.to_string net in
  let rec contains needle i =
    i + String.length needle <= String.length text
    && (String.sub text i (String.length needle) = needle
       || contains needle (i + 1))
  in
  check_bool "unbounded rendered" true (contains "[2,w[" 0);
  check_bool "weight rendered" true (contains "p*2" 0);
  check_bool "roundtrips" true (net_equal net (roundtrip net))

let test_parse_tina_example () =
  (* a net as TINA itself writes it, with implicit place declaration *)
  let text =
    "net example\ntr t0 [0,4] p0 -> p1 p2*2\ntr t1 [1,w[ p1 -> p0\npl p0 (2)\n"
  in
  match Tina.of_string text with
  | Error e -> Alcotest.failf "parse: %s" (Tina.error_to_string e)
  | Ok net ->
    check_string "name" "example" net.Pnet.net_name;
    check_int "three places (p2 implicit)" 3 (Pnet.place_count net);
    check_int "marking" 2 net.Pnet.m0.(Pnet.find_place net "p0");
    check_bool "weight parsed" true
      (Array.exists
         (fun (p, w) -> p = Pnet.find_place net "p2" && w = 2)
         net.Pnet.post.(Pnet.find_transition net "t0"));
    check_bool "unbounded parsed" true
      (Time_interval.lft (Pnet.interval net (Pnet.find_transition net "t1"))
       = Time_interval.Infinity)

let test_comments_ignored () =
  let text = "net c\n# a remark\ntr t0 [0,0] p0 -> p1\npl p0 (1)\n" in
  match Tina.of_string text with
  | Ok net -> check_int "one transition" 1 (Pnet.transition_count net)
  | Error e -> Alcotest.failf "parse: %s" (Tina.error_to_string e)

let expect_error text =
  match Tina.of_string text with
  | Ok _ -> Alcotest.failf "expected an error for %S" text
  | Error e ->
    check_bool "message" true (String.length (Tina.error_to_string e) > 0)

let test_errors () =
  expect_error "tr t0 0,4 p0 -> p1";
  expect_error "tr t0 [0,4] p0 p1";  (* no arrow *)
  expect_error "tr t0 [4,2] p0 -> p1";  (* inverted interval *)
  expect_error "pl p0 (x)";
  expect_error "pl p0 (-1)";
  expect_error "frobnicate yes";
  expect_error "tr t0 [0,4] p0*0 -> p1"

let test_file_io () =
  let path = Filename.temp_file "ezrt" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let net = conflict_net () in
      Tina.save_file path net;
      match Tina.load_file path with
      | Ok net' -> check_bool "file roundtrip" true (net_equal net net')
      | Error e -> Alcotest.failf "load: %s" (Tina.error_to_string e))

let prop_translated_roundtrip =
  qcheck ~count:40 "translated nets roundtrip through .net" arbitrary_spec
    (fun spec ->
      let net = (Translate.translate spec).Translate.net in
      net_equal net (roundtrip net))

let suite =
  [
    case "writer format" test_writer_format;
    case "small nets roundtrip" test_roundtrip_small;
    case "case-study nets roundtrip" test_roundtrip_case_studies;
    case "weights and unbounded intervals" test_weights_and_unbounded;
    case "parses TINA-style input" test_parse_tina_example;
    case "comments ignored" test_comments_ignored;
    case "malformed input rejected" test_errors;
    case "file io" test_file_io;
    prop_translated_roundtrip;
  ]
