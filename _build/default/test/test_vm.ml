module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Timeline = Ezrt_sched.Timeline
module Table = Ezrt_sched.Table
module Vm = Ezrt_runtime.Vm
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let artifact_of spec =
  let model = Translate.translate spec in
  match Search.find_schedule model with
  | Ok schedule, _ ->
    let segments = Timeline.of_schedule model schedule in
    (model, segments, Table.of_segments segments)
  | Error f, _ -> Alcotest.failf "infeasible: %s" (Search.failure_to_string f)

let test_zero_overhead_reproduces_timeline () =
  List.iter
    (fun (name, spec) ->
      if name <> "greedy-trap" then begin
        let model, segments, items = artifact_of spec in
        let outcome = Vm.execute ~overhead:0 model items in
        check_bool (name ^ ": vm segments = planned segments") true
          (outcome.Vm.segments = segments);
        check_int (name ^ ": no overruns") 0 outcome.Vm.overruns
      end)
    Case_studies.all

let test_completion_counting () =
  let model, _, items = artifact_of Case_studies.quickstart in
  let outcome = Vm.execute ~cycles:3 model items in
  check_int "three instances per cycle" 9 outcome.Vm.completed

let test_trace_events () =
  let model, _, items = artifact_of Case_studies.fig8_preemptive in
  let outcome = Vm.execute model items in
  let has pred = List.exists pred outcome.Vm.trace in
  check_bool "interrupts" true
    (has (function Vm.Timer_interrupt _ -> true | _ -> false));
  check_bool "dispatches" true
    (has (function Vm.Dispatch _ -> true | _ -> false));
  check_bool "preemptions" true
    (has (function Vm.Preempted _ -> true | _ -> false));
  check_bool "completions" true
    (has (function Vm.Completed _ -> true | _ -> false));
  check_bool "no overruns" false
    (has (function Vm.Overrun _ -> true | _ -> false));
  (* resumed dispatches are flagged *)
  check_bool "resume dispatch" true
    (has (function Vm.Dispatch { resumed; _ } -> resumed | _ -> false));
  List.iter
    (fun e ->
      check_bool "event renders" true (Vm.event_to_string model e <> ""))
    outcome.Vm.trace

let test_verify_ok () =
  let model, _, items = artifact_of Case_studies.mine_pump in
  match Vm.verify model items with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "vm verify: %s"
      (Ezrt_sched.Validator.violation_to_string (List.hd vs))

(* Two phase-separated tasks leave a 3-unit gap between their table
   rows: A runs [0,2) and B [5,7), so up to 3 units of dispatch
   overhead are absorbed before A's slot collides with B's interrupt. *)
let gapped_spec =
  Ezrt_spec.Spec.make ~name:"gapped"
    ~tasks:
      [
        Ezrt_spec.Task.make ~name:"A" ~wcet:2 ~deadline:10 ~period:20 ();
        Ezrt_spec.Task.make ~name:"B" ~phase:5 ~wcet:2 ~deadline:10 ~period:20
          ();
      ]
    ()

let test_overhead_shifts_and_breaks () =
  let model, _, items = artifact_of gapped_spec in
  (match Vm.verify ~overhead:1 model items with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "1 unit of overhead should be absorbed");
  (match Vm.verify ~overhead:50 model items with
  | Ok () -> Alcotest.fail "50 units of overhead cannot be feasible"
  | Error _ -> ());
  check_int "gap width bounds the overhead" 3
    (Vm.max_tolerable_overhead model items);
  (* a back-to-back table absorbs nothing: every row starts exactly
     when the previous one ends *)
  let model_q, _, items_q = artifact_of Case_studies.quickstart in
  check_int "back-to-back tables absorb nothing" 0
    (Vm.max_tolerable_overhead model_q items_q)

let test_tight_schedule_rejects_overhead () =
  let model, _, items = artifact_of Case_studies.fig8_preemptive in
  check_int "fig8 tolerates no overhead" 0
    (Vm.max_tolerable_overhead model items)

let test_overrun_detection () =
  let model, _, items = artifact_of Case_studies.fig8_preemptive in
  let outcome = Vm.execute ~overhead:1 model items in
  check_bool "overruns detected" true (outcome.Vm.overruns > 0)

let test_bad_arguments () =
  let model, _, items = artifact_of Case_studies.quickstart in
  Alcotest.check_raises "cycles" (Invalid_argument "Vm.execute: cycles < 1")
    (fun () -> ignore (Vm.execute ~cycles:0 model items));
  Alcotest.check_raises "overhead"
    (Invalid_argument "Vm.execute: negative overhead") (fun () ->
      ignore (Vm.execute ~overhead:(-1) model items))

let test_spec_overhead_default () =
  (* disp_overhead from the metamodel is the default VM overhead *)
  let spec =
    { Case_studies.quickstart with Ezrt_spec.Spec.disp_overhead = 1 }
  in
  let model, _, items = artifact_of spec in
  let dflt = Vm.execute model items in
  let explicit = Vm.execute ~overhead:1 model items in
  check_bool "defaults to the spec's overhead" true
    (dflt.Vm.segments = explicit.Vm.segments)

let overrun_pair =
  Ezrt_spec.Spec.make ~name:"overrun-pair"
    ~tasks:
      [
        Ezrt_spec.Task.make ~name:"blocker" ~wcet:2 ~deadline:20 ~period:20 ();
        Ezrt_spec.Task.make ~name:"victim" ~phase:1 ~wcet:3 ~deadline:6
          ~period:20 ();
      ]
    ()

let test_fault_isolated () =
  let model, segments, items = artifact_of overrun_pair in
  let faults = [ { Vm.f_task = 0; f_instance = 0; f_extra = 5 } ] in
  (match Vm.isolation_check ~faults model items with
  | Ok overruns -> check_bool "overrun confined" true (overruns >= 1)
  | Error vs ->
    Alcotest.failf "leak: %s"
      (Ezrt_sched.Validator.violation_to_string (List.hd vs)));
  (* the healthy victim's segment is exactly as planned *)
  let outcome = Vm.execute ~faults model items in
  let victim_segs =
    List.filter (fun (s : Timeline.segment) -> s.Timeline.task = 1)
      outcome.Vm.segments
  in
  check_int "victim untouched" 1 (List.length victim_segs);
  let planned_victim =
    List.filter (fun (s : Timeline.segment) -> s.Timeline.task = 1) segments
  in
  check_bool "same segment as planned" true (victim_segs = planned_victim)

let test_fault_zero_is_noop () =
  let model, segments, items = artifact_of Case_studies.quickstart in
  let faults = [ { Vm.f_task = 0; f_instance = 0; f_extra = 0 } ] in
  let outcome = Vm.execute ~faults model items in
  check_bool "identical" true (outcome.Vm.segments = segments);
  check_int "no overruns" 0 outcome.Vm.overruns

let test_fault_negative_rejected () =
  let model, _, items = artifact_of Case_studies.quickstart in
  Alcotest.check_raises "negative"
    (Invalid_argument "Vm.execute: negative fault") (fun () ->
      ignore
        (Vm.execute
           ~faults:[ { Vm.f_task = 0; f_instance = 0; f_extra = -1 } ]
           model items))

let test_fault_overrun_counted () =
  let model, _, items = artifact_of Case_studies.quickstart in
  let faults = [ { Vm.f_task = 1; f_instance = 0; f_extra = 100 } ] in
  let outcome = Vm.execute ~faults model items in
  check_bool "overrun recorded" true (outcome.Vm.overruns >= 1);
  check_bool "faulty instance never completes" true
    (outcome.Vm.completed < 3)

let suite =
  [
    case "fault isolation (temporal firewall)" test_fault_isolated;
    case "zero-extra fault is a no-op" test_fault_zero_is_noop;
    case "negative fault rejected" test_fault_negative_rejected;
    case "fault overruns counted" test_fault_overrun_counted;
    case "zero overhead reproduces the planned timeline"
      test_zero_overhead_reproduces_timeline;
    case "completion counting over cycles" test_completion_counting;
    case "trace event inventory" test_trace_events;
    slow_case "mine pump table verifies on the vm" test_verify_ok;
    case "overhead absorption and breakage" test_overhead_shifts_and_breaks;
    case "tight schedules tolerate no overhead"
      test_tight_schedule_rejects_overhead;
    case "overrun detection" test_overrun_detection;
    case "bad arguments rejected" test_bad_arguments;
    case "spec overhead is the default" test_spec_overhead_default;
  ]
