module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Optimize = Ezrt_sched.Optimize
module Timeline = Ezrt_sched.Timeline
module Quality = Ezrt_sched.Quality
module Validator = Ezrt_sched.Validator
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let optimize spec =
  let model = Translate.translate spec in
  match Optimize.min_preemptions model with
  | Ok outcome -> (model, outcome)
  | Error f -> Alcotest.failf "optimize: %s" (Search.failure_to_string f)

let test_fig8_proven_minimum () =
  let model, outcome = optimize Case_studies.fig8_preemptive in
  (* the minimum is 3: TaskC (period 10, deadline 4) forces exactly
     three interruptions of the long tasks per hyper-period *)
  check_int "proven minimum" 3 outcome.Optimize.preemptions;
  let segments = Timeline.of_schedule model outcome.Optimize.schedule in
  (match Validator.check model segments with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "invalid: %s" (Validator.violation_to_string (List.hd vs)));
  (* the accounting agrees with the independent quality metric *)
  let q = Quality.of_timeline model segments in
  check_int "accounting agrees with Quality" outcome.Optimize.preemptions
    q.Quality.total_preemptions

let test_zero_preemption_cases () =
  List.iter
    (fun (name, spec) ->
      let _, outcome = optimize spec in
      check_int (name ^ " needs no preemptions") 0 outcome.Optimize.preemptions)
    [
      ("fig4", Case_studies.fig4_exclusion);
      ("flight-control", Case_studies.flight_control);
      ("quickstart", Case_studies.quickstart);
      ("greedy-trap", Case_studies.greedy_trap);
    ]

let test_never_worse_than_heuristics () =
  List.iter
    (fun (pname, policy) ->
      let model = Translate.translate Case_studies.fig8_preemptive in
      let options = { Search.default_options with policy } in
      match Search.find_schedule ~options model with
      | Ok schedule, _ ->
        let q =
          Quality.of_timeline model (Timeline.of_schedule model schedule)
        in
        let _, outcome = optimize Case_studies.fig8_preemptive in
        check_bool
          (Printf.sprintf "optimum <= %s heuristic" pname)
          true
          (outcome.Optimize.preemptions <= q.Quality.total_preemptions)
      | Error _, _ -> Alcotest.fail "heuristic infeasible")
    Ezrt_sched.Priority.all

let test_initial_bound_primes () =
  let model = Translate.translate Case_studies.fig8_preemptive in
  (* bound 3 = the optimum: the search still proves it (finds one) *)
  (match Optimize.min_preemptions ~initial_bound:4 model with
  | Ok o -> check_int "optimum found under a priming bound" 3 o.Optimize.preemptions
  | Error f -> Alcotest.failf "%s" (Search.failure_to_string f));
  (* an initial bound at the optimum excludes all schedules (strict
     improvement required), so the search reports infeasible-at-bound *)
  match Optimize.min_preemptions ~initial_bound:0 model with
  | Error Search.Infeasible -> ()
  | Error f -> Alcotest.failf "unexpected: %s" (Search.failure_to_string f)
  | Ok o ->
    Alcotest.failf "fig8 cannot run with %d preemptions" o.Optimize.preemptions

let test_budget () =
  let model = Translate.translate Case_studies.fig8_preemptive in
  match Optimize.min_preemptions ~max_nodes:1 model with
  | Error Search.Budget_exhausted -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Search.failure_to_string f)
  | Ok o ->
    (* a first incumbent may exist before the budget trips; the
       truncation is visible in the explored count *)
    check_bool "truncation visible" true (o.Optimize.explored >= 1)

let test_infeasible () =
  let spec =
    Spec.make ~name:"tight"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:5 ~deadline:5 ~period:10 ();
          Task.make ~name:"b" ~wcet:5 ~deadline:6 ~period:10 ();
        ]
      ()
  in
  match Optimize.min_preemptions (Translate.translate spec) with
  | Error Search.Infeasible -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Search.failure_to_string f)
  | Ok _ -> Alcotest.fail "unschedulable set"

let prop_optimum_certifies =
  qcheck ~count:25 "optimized schedules certify" arbitrary_spec (fun spec ->
      let model = Translate.translate spec in
      match Optimize.min_preemptions ~max_nodes:200_000 model with
      | Ok outcome ->
        let segments = Timeline.of_schedule model outcome.Optimize.schedule in
        Result.is_ok (Validator.check model segments)
        && (Quality.of_timeline model segments).Quality.total_preemptions
           = outcome.Optimize.preemptions
      | Error _ -> true)

let suite =
  [
    case "fig8 proven minimum" test_fig8_proven_minimum;
    case "zero-preemption cases" test_zero_preemption_cases;
    case "never worse than the heuristics" test_never_worse_than_heuristics;
    case "initial bound" test_initial_bound_primes;
    case "node budget" test_budget;
    case "infeasible detected" test_infeasible;
    prop_optimum_certifies;
  ]
